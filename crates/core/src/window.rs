//! Window-size optimization (§IV-D).
//!
//! "We found that window size cannot be static to achieve the highest
//! throughput. We implement an optimized window size selection that will
//! choose the correct window size based on certain parameters (i.e.,
//! workload type, initiator concurrency, TC/LS ratio)." The static table
//! below encodes the paper's measured optima (Fig. 6(a)/(b)): 32 peaks on
//! 25/100 Gbps; on 10 Gbps large windows regress because the coalesced
//! completion is further delayed behind a congested link, so a smaller
//! window wins. The dynamic optimizer hill-climbs at runtime, adjusting
//! "after a draining request completion notification is received".

use fabric::Gbps;
use simkit::SimTime;

/// Candidate window sizes the optimizer moves between.
pub const WINDOW_SIZES: [u32; 6] = [2, 4, 8, 16, 32, 64];

/// Static window selection from workload parameters.
///
/// * `speed` — fabric preset.
/// * `write_fraction` — fraction of write I/O in the TC stream (0.0 for
///   pure read, 1.0 for pure write).
/// * `tc_initiators` — TC tenant concurrency on the target.
pub fn optimal_window(speed: Gbps, write_fraction: f64, tc_initiators: usize) -> u32 {
    match speed {
        // On a congested 10 Gbps link the drain completion queues behind
        // bulk data; beyond ~16 the stall outweighs the amortization
        // (Fig. 6(b): "for a window size of 64 at 10 Gbps, the completion
        // notification packets begin to observe more delay").
        Gbps::G10 => 16,
        Gbps::G25 | Gbps::G100 => {
            // Writes drain slower (device-limited); with many concurrent
            // TC tenants a slightly smaller window keeps per-tenant
            // batches from monopolising the metered device slots.
            if write_fraction > 0.5 && tc_initiators >= 4 {
                16
            } else {
                32
            }
        }
    }
}

/// Runtime hill-climbing window optimizer.
///
/// Epochs of `drains_per_epoch` drain completions are timed; the
/// completion rate of each epoch is compared to the previous one and the
/// window index moves one step in the improving direction (classic
/// hill climbing on a unimodal response curve).
#[derive(Clone, Debug)]
pub struct DynamicWindow {
    idx: usize,
    direction: i32,
    drains_per_epoch: u32,
    drains_in_epoch: u32,
    completed_in_epoch: u64,
    /// Seeded lazily by the first [`Self::on_drain_complete`]: the
    /// optimizer may come alive long after t=0, and measuring the first
    /// epoch from `SimTime::ZERO` would dilute its rate arbitrarily.
    epoch_start: Option<SimTime>,
    last_rate: Option<f64>,
}

impl DynamicWindow {
    /// Start at the candidate closest to `initial`.
    pub fn new(initial: u32) -> Self {
        let idx = WINDOW_SIZES
            .iter()
            .enumerate()
            .min_by_key(|(_, &w)| w.abs_diff(initial))
            .map(|(i, _)| i)
            .unwrap_or(0);
        DynamicWindow {
            idx,
            direction: 1,
            drains_per_epoch: 16,
            drains_in_epoch: 0,
            completed_in_epoch: 0,
            epoch_start: None,
            last_rate: None,
        }
    }

    /// Current window size.
    pub fn current(&self) -> u32 {
        WINDOW_SIZES[self.idx]
    }

    /// Record a drain completion that finished `batch` requests at
    /// `now`. Returns the new window size when the optimizer actually
    /// changed it.
    pub fn on_drain_complete(&mut self, now: SimTime, batch: u64) -> Option<u32> {
        let epoch_start = *self.epoch_start.get_or_insert(now);
        self.drains_in_epoch += 1;
        self.completed_in_epoch += batch;
        if self.drains_in_epoch < self.drains_per_epoch {
            return None;
        }
        let elapsed = now.since(epoch_start).as_secs_f64();
        let completed = self.completed_in_epoch;
        self.drains_in_epoch = 0;
        self.completed_in_epoch = 0;
        self.epoch_start = Some(now);
        if elapsed <= 0.0 {
            // A whole epoch inside one instant carries no rate signal:
            // don't fabricate one (the old `f64::MAX` sentinel made the
            // *next* real epoch always look like a regression), don't
            // move, and leave `last_rate` for a measurable epoch.
            return None;
        }
        let rate = completed as f64 / elapsed;
        if let Some(last) = self.last_rate {
            // Worse than last epoch: reverse direction.
            if rate < last {
                self.direction = -self.direction;
            }
        }
        self.last_rate = Some(rate);
        let mut next = self.idx as i32 + self.direction;
        if next < 0 || next >= WINDOW_SIZES.len() as i32 {
            // At a boundary the step must land somewhere: reverse and
            // take the step in the same epoch rather than burning an
            // epoch standing still (the old bounce re-measured the edge
            // window and only then walked away from it).
            self.direction = -self.direction;
            next = self.idx as i32 + self.direction;
        }
        let prev = self.idx;
        self.idx = next.clamp(0, WINDOW_SIZES.len() as i32 - 1) as usize;
        if self.idx != prev {
            Some(self.current())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    #[test]
    fn static_table_matches_paper() {
        // Fig 6(a): peak at 32 on 25/100 Gbps.
        assert_eq!(optimal_window(Gbps::G100, 0.0, 1), 32);
        assert_eq!(optimal_window(Gbps::G25, 0.0, 1), 32);
        // Fig 6(b): 10 Gbps gains nothing from larger windows.
        assert!(optimal_window(Gbps::G10, 0.0, 1) <= 16);
        // Heavy multi-tenant writes back off.
        assert_eq!(optimal_window(Gbps::G100, 1.0, 4), 16);
        assert_eq!(optimal_window(Gbps::G100, 0.5, 4), 32);
    }

    #[test]
    fn dynamic_starts_near_initial() {
        assert_eq!(DynamicWindow::new(32).current(), 32);
        assert_eq!(DynamicWindow::new(30).current(), 32);
        assert_eq!(DynamicWindow::new(3).current(), 2);
        assert_eq!(DynamicWindow::new(1000).current(), 64);
    }

    /// Simulate a unimodal throughput curve peaking at 16 and check the
    /// optimizer converges near the peak.
    #[test]
    fn dynamic_converges_to_peak() {
        let peak = 16.0f64;
        let rate_for = |w: u32| -> f64 {
            // Concave response: penalize distance from the peak in
            // log-space.
            let d = ((w as f64).log2() - peak.log2()).abs();
            1000.0 * (-0.5 * d * d).exp()
        };
        let mut opt = DynamicWindow::new(2);
        let mut now = SimTime::ZERO;
        let mut visits = std::collections::HashMap::new();
        for _ in 0..200 {
            let w = opt.current();
            let rate = rate_for(w);
            // One epoch: 16 drains of `w` requests at `rate` req/s.
            let dur = SimDuration::from_secs_f64(16.0 * w as f64 / rate);
            for _ in 0..15 {
                assert!(opt.on_drain_complete(now, u64::from(w)).is_none());
            }
            now += dur;
            opt.on_drain_complete(now, u64::from(w));
            *visits.entry(opt.current()).or_insert(0u32) += 1;
        }
        // The optimizer should spend most epochs at or adjacent to the
        // peak (hill climbing oscillates around it).
        let near_peak: u32 = [8, 16, 32]
            .iter()
            .map(|w| visits.get(w).copied().unwrap_or(0))
            .sum();
        let total: u32 = visits.values().sum();
        assert!(
            near_peak * 10 >= total * 7,
            "spent too little time near peak: {visits:?}"
        );
    }

    /// The first epoch must measure from the first observed drain, not
    /// from t=0: two optimizers fed identical drain streams offset by a
    /// large constant time must make identical decisions.
    #[test]
    fn first_epoch_is_translation_invariant() {
        let offset = SimDuration::from_secs_f64(3600.0);
        let mut at_zero = DynamicWindow::new(2);
        let mut at_hour = DynamicWindow::new(2);
        let mut now = SimTime::ZERO;
        for i in 0..64 {
            now += SimDuration::from_micros(50 + (i % 7));
            let a = at_zero.on_drain_complete(now, 8);
            let b = at_hour.on_drain_complete(now + offset, 8);
            assert_eq!(a, b, "drain {i} diverged");
            assert_eq!(at_zero.current(), at_hour.current(), "drain {i}");
        }
    }

    /// An epoch whose 16 drains all land on one instant has no rate
    /// signal: the optimizer must hold still and must not poison the
    /// next real epoch's comparison (the old sentinel rate of
    /// `f64::MAX` made it always read as a regression).
    #[test]
    fn degenerate_epoch_is_skipped() {
        let mut opt = DynamicWindow::new(8);
        let before = opt.current();
        let now = SimTime::ZERO + SimDuration::from_millis(5);
        for _ in 0..16 {
            assert_eq!(opt.on_drain_complete(now, 8), None);
        }
        assert_eq!(opt.current(), before, "degenerate epoch moved the window");
        // The next measurable epoch proceeds as if it were the first:
        // no stale comparison, one exploratory step.
        let mut later = now;
        for _ in 0..16 {
            later += SimDuration::from_micros(100);
            opt.on_drain_complete(later, 8);
        }
        assert_eq!(opt.current(), 16, "exploratory step after a skipped epoch");
    }

    /// At the edge of `WINDOW_SIZES` a retune reverses and steps inward
    /// in the same epoch; `Some` is returned only when the window
    /// actually changed.
    #[test]
    fn boundary_reverses_within_same_epoch() {
        let mut opt = DynamicWindow::new(64);
        let mut now = SimTime::ZERO;
        for _ in 0..16 {
            now += SimDuration::from_micros(100);
        }
        let mut retune = None;
        for _ in 0..16 {
            now += SimDuration::from_micros(100);
            retune = opt.on_drain_complete(now, 64);
        }
        // From the top edge the only legal step is down, taken at once.
        assert_eq!(retune, Some(32));
        assert_eq!(opt.current(), 32);
    }

    #[test]
    fn dynamic_stays_in_bounds() {
        let mut opt = DynamicWindow::new(64);
        let mut now = SimTime::ZERO;
        for i in 0..500 {
            now += SimDuration::from_micros(100);
            opt.on_drain_complete(now, 64);
            let w = opt.current();
            assert!(WINDOW_SIZES.contains(&w), "iteration {i}: window {w}");
        }
    }
}
