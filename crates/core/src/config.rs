//! NVMe-oPF configuration.

use simkit::SimDuration;

/// The application-facing request tag (§III-C: "By easily passing a
/// request with either latency-sensitive or throughput-critical flags,
/// user applications can observe respective performance optimizations").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReqClass {
    /// Complete and respond immediately; bypass TC queues.
    LatencySensitive,
    /// Queue at the target; coalesce the completion notification.
    ThroughputCritical,
}

/// How the initiator chooses its drain window (§IV-D).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WindowPolicy {
    /// Fixed window size.
    Static(u32),
    /// Runtime hill-climbing: re-tuned "after a draining request
    /// completion notification is received on the initiator".
    Dynamic {
        /// Initial window size.
        initial: u32,
    },
}

impl WindowPolicy {
    /// The window the policy starts from.
    pub fn initial(self) -> u32 {
        match self {
            WindowPolicy::Static(w) => w,
            WindowPolicy::Dynamic { initial } => initial,
        }
    }
}

/// Target-side TC queue organisation — the §IV-A ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueMode {
    /// One TC queue per initiator (the paper's lock-free design).
    PerInitiator,
    /// A single TC queue shared by all initiators. Demonstrates the
    /// §IV-A failure: one tenant's drain flushes other tenants'
    /// windows early, shrinking the effective coalescing factor.
    Shared,
}

/// Initiator-side Priority Manager configuration.
#[derive(Clone, Debug)]
pub struct OpfInitiatorConfig {
    /// Drain-window policy.
    pub window: WindowPolicy,
    /// Auto-drain a partially filled window after this long without a
    /// drain (like calibrated interrupt-coalescing timeouts): bounds the
    /// latency cost of coalescing when the TC stream pauses or runs
    /// below the window rate. `None` disables the timer (the paper's
    /// design, which assumes saturating closed-loop streams).
    pub drain_timeout: Option<SimDuration>,
    /// Per-CID bookkeeping cost when a coalesced completion marks many
    /// requests complete at once (vs. a full response-processing cost
    /// per request in the baseline).
    pub coalesced_complete_each: SimDuration,
    /// Capacity of the CID queue (sized ≥ queue depth + window so a full
    /// pipeline can never overflow it — the §IV-A lock-up guard).
    pub cid_queue_capacity: usize,
    /// Bounded retransmission for commands that expect a direct response
    /// (LS commands and draining TC flags). `None` disables recovery: a
    /// lost capsule hangs its CID forever, as the lossless-fabric design
    /// assumes.
    pub retry: Option<nvmf::RetryPolicy>,
    /// Retransmit an outstanding draining flag when no coalesced
    /// response has arrived after this long. Without it a drain lost on
    /// the wire strands every CID queued behind it (the window
    /// generation bump masks the loss from the drain-timeout path).
    pub redrain_timeout: Option<SimDuration>,
}

impl Default for OpfInitiatorConfig {
    fn default() -> Self {
        OpfInitiatorConfig {
            window: WindowPolicy::Static(32),
            drain_timeout: Some(SimDuration::from_micros(500)),
            coalesced_complete_each: SimDuration::from_nanos(150),
            cid_queue_capacity: 512,
            retry: None,
            redrain_timeout: None,
        }
    }
}

/// Per-tenant drain-flag rate limit (DESIGN.md §14): a token bucket in
/// simulated time. Each accepted draining flag costs one token; tokens
/// refill at `per_sec` up to `burst`. A drain arriving with no token is
/// *coalesced*, not dropped — its command stays staged as plain TC and
/// is flushed by the tenant's next in-rate drain (or re-drain timer), so
/// honest traffic is never lost while a drain flood cannot force one
/// flush-plus-response per command.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DrainRateLimit {
    /// Sustained accepted-drain rate, per simulated second.
    pub per_sec: f64,
    /// Bucket capacity (burst tolerance).
    pub burst: u32,
}

impl Default for DrainRateLimit {
    fn default() -> Self {
        // Generous: an honest window-32 tenant drains at IOPS/32, well
        // under this even at 100 Gbps line rate; a flood setting the
        // flag on every command exceeds it by the window factor.
        DrainRateLimit {
            per_sec: 50_000.0,
            burst: 128,
        }
    }
}

/// Target-side Priority Manager configuration.
#[derive(Clone, Debug)]
pub struct OpfTargetConfig {
    /// TC queue organisation.
    pub queue_mode: QueueMode,
    /// Whether LS requests bypass the TC queues (ablation switch;
    /// always true in the paper's design).
    pub ls_bypass: bool,
    /// Maximum TC commands in flight at the device. The PM meters
    /// drained batches into the device so TC floods do not monopolise
    /// the flash units ahead of bypassing LS requests (§III-A: the PMs
    /// "control request completion times ... with respect to application
    /// optimization objectives").
    pub tc_inflight_cap: usize,
    /// Enforce that a command capsule's wire initiator byte matches the
    /// connection it arrived on (DESIGN.md §14). On mismatch the capsule
    /// is counted and dropped. Disabling this reproduces the unhardened
    /// wire-trusting target for the adversary experiment's baseline
    /// column — spoofed capsules are then classified under the ID they
    /// claim.
    pub enforce_identity: bool,
    /// Per-tenant drain-flag rate limit. `None` (the default) disables
    /// the limiter and adds no state, no arithmetic and no metric keys,
    /// keeping pre-hardening runs byte-identical.
    pub drain_rate: Option<DrainRateLimit>,
}

impl Default for OpfTargetConfig {
    fn default() -> Self {
        OpfTargetConfig {
            queue_mode: QueueMode::PerInitiator,
            ls_bypass: true,
            tc_inflight_cap: 64,
            enforce_identity: true,
            drain_rate: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let i = OpfInitiatorConfig::default();
        assert_eq!(i.window.initial(), 32);
        assert!(i.drain_timeout.is_some());
        assert!(i.cid_queue_capacity >= 128 + 32);
        // Recovery is strictly opt-in: defaults stay lossless-fabric.
        assert!(i.retry.is_none());
        assert!(i.redrain_timeout.is_none());
        let t = OpfTargetConfig::default();
        assert_eq!(t.queue_mode, QueueMode::PerInitiator);
        assert!(t.ls_bypass);
        assert!(t.tc_inflight_cap >= 16);
        // Identity checking is always on; the drain limiter (which adds
        // metric keys) is strictly opt-in.
        assert!(t.enforce_identity);
        assert!(t.drain_rate.is_none());
        let d = DrainRateLimit::default();
        assert!(d.per_sec > 0.0 && d.burst >= 1);
    }

    #[test]
    fn window_policy_initial() {
        assert_eq!(WindowPolicy::Static(8).initial(), 8);
        assert_eq!(WindowPolicy::Dynamic { initial: 16 }.initial(), 16);
    }
}
