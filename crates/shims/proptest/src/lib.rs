//! Offline stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace vendors a deterministic randomized-testing harness with the
//! subset of the proptest API it actually uses:
//!
//! - the [`proptest!`] macro with `name in strategy` and `name: Type`
//!   parameters, doc comments / attributes on the inner functions, and an
//!   optional `#![proptest_config(..)]` header
//! - [`Strategy`] implementations for integer ranges, tuples (up to 8),
//!   [`Just`], [`prelude::any`] over primitive types, `collection::{vec,
//!   hash_set}`, `sample::Index`, and [`prop_oneof!`]
//! - panic-based [`prop_assert!`] / [`prop_assert_eq!`]
//!
//! Differences from the real crate, deliberately accepted for an offline
//! test environment: inputs are drawn from a fixed per-test seed (derived
//! from the test name), so runs are reproducible but there is **no
//! shrinking** — on failure the harness prints the full failing input
//! instead. `*.proptest-regressions` files are not consumed; regressions
//! worth pinning get an explicit unit test instead.

use std::fmt::Debug;

// ---------------------------------------------------------------------------
// Deterministic RNG (PCG-XSH-RR 32, same construction simkit uses, duplicated
// here so the shim has zero workspace dependencies).
// ---------------------------------------------------------------------------

/// Deterministic random source handed to [`Strategy::generate`].
pub struct TestRng {
    state: u64,
    inc: u64,
}

impl TestRng {
    /// Seed the RNG from an arbitrary label (the test function name), so every
    /// test gets an independent but fully reproducible stream.
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label picks the stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng {
            state: 0,
            inc: (h << 1) | 1,
        };
        rng.state = rng.state.wrapping_add(h).wrapping_add(rng.inc);
        rng.next_u32();
        rng
    }

    fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Uniform-ish u64 (two PCG draws).
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// A value in `[0, bound)`. Modulo bias is irrelevant at test scale.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range handed to strategy");
        self.next_u64() % bound
    }

    /// A uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u32() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Box the strategy, erasing its concrete type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn Strategy<Value = V>>,
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer range strategies: `lo..hi` draws uniformly from [lo, hi).
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

// Tuple strategies: a tuple of strategies yields a tuple of values.
macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// One of several alternatives, uniformly chosen (`prop_oneof!`).
pub struct Union<V> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Build from already-boxed alternatives.
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Arbitrary + any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! tuple_arbitrary {
    ($(($($t:ident),+);)*) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    )*};
}

tuple_arbitrary! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

/// Strategy produced by [`prelude::any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// collection / sample
// ---------------------------------------------------------------------------

/// `vec` / `hash_set` strategies over an element strategy and a length range.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n =
                self.len.start + rng.below((self.len.end - self.len.start).max(1) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with target size drawn from `len`.
    pub struct HashSetStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `HashSet` with size drawn from `len` (best effort: duplicates from
    /// a small element domain may produce fewer entries, matching proptest's
    /// own behavior for tight domains).
    pub fn hash_set<S>(elem: S, len: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { elem, len }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash + std::fmt::Debug,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n =
                self.len.start + rng.below((self.len.end - self.len.start).max(1) as u64) as usize;
            let mut out = HashSet::with_capacity(n);
            // Bounded attempts so tight element domains cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < n && attempts < n.saturating_mul(16) + 64 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// `sample::Index` — a position that scales to any collection length.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An abstract index into a collection of unknown length.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a concrete collection length. Panics on `len == 0`
        /// (same contract as the real crate).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Subset of proptest's per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; this shim never persists failures.
    pub failure_persistence: Option<()>,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            failure_persistence: None,
        }
    }
}

impl ProptestConfig {
    /// Convenience mirroring `ProptestConfig::with_cases`.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::sample;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// The canonical strategy for `T` (`any::<u8>()`, `any::<(bool, u16)>()`…).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub use prelude::any;

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert inside a property; panics (and so fails the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniformly choose among alternative strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Define property tests. Supports:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 48, ..Default::default() })]
///     /// doc comments pass through
///     #[test]
///     fn roundtrip(cid: u16, nlb in 0u16..64, flags in prop_oneof![Just(0u8), Just(1u8)]) {
///         prop_assert_eq!(decode(encode(cid, nlb, flags)), (cid, nlb, flags));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( @cfg ($cfg:expr) ) => {};
    ( @cfg ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! {
                @cfg ($cfg) @name ($name) @acc () @params ( $($params)* ) @body ($body)
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // `name in strategy, ...`
    ( @cfg ($cfg:expr) @name ($name:ident) @acc ($($an:ident => $as:expr,)*)
      @params ( $pn:ident in $ps:expr, $($rest:tt)* ) @body ($body:block) ) => {
        $crate::__proptest_case! {
            @cfg ($cfg) @name ($name) @acc ($($an => $as,)* $pn => $ps,)
            @params ( $($rest)* ) @body ($body)
        }
    };
    // `name in strategy` (final)
    ( @cfg ($cfg:expr) @name ($name:ident) @acc ($($an:ident => $as:expr,)*)
      @params ( $pn:ident in $ps:expr ) @body ($body:block) ) => {
        $crate::__proptest_case! {
            @cfg ($cfg) @name ($name) @acc ($($an => $as,)* $pn => $ps,)
            @params ( ) @body ($body)
        }
    };
    // `name: Type, ...`
    ( @cfg ($cfg:expr) @name ($name:ident) @acc ($($an:ident => $as:expr,)*)
      @params ( $pn:ident : $pt:ty, $($rest:tt)* ) @body ($body:block) ) => {
        $crate::__proptest_case! {
            @cfg ($cfg) @name ($name)
            @acc ($($an => $as,)* $pn => $crate::prelude::any::<$pt>(),)
            @params ( $($rest)* ) @body ($body)
        }
    };
    // `name: Type` (final)
    ( @cfg ($cfg:expr) @name ($name:ident) @acc ($($an:ident => $as:expr,)*)
      @params ( $pn:ident : $pt:ty ) @body ($body:block) ) => {
        $crate::__proptest_case! {
            @cfg ($cfg) @name ($name)
            @acc ($($an => $as,)* $pn => $crate::prelude::any::<$pt>(),)
            @params ( ) @body ($body)
        }
    };
    // All params accumulated: run the cases.
    ( @cfg ($cfg:expr) @name ($name:ident) @acc ($($an:ident => $as:expr,)*)
      @params ( ) @body ($body:block) ) => {{
        use $crate::Strategy as _;
        let __cfg: $crate::ProptestConfig = $cfg;
        let mut __rng = $crate::TestRng::deterministic(concat!(
            module_path!(), "::", stringify!($name)
        ));
        for __case in 0..__cfg.cases {
            $(let $an = ($as).generate(&mut __rng);)*
            let __input = format!(
                concat!("{{ ", $(stringify!($an), ": {:?}, ",)* "}}"),
                $(&$an),*
            );
            let __outcome = ::std::panic::catch_unwind(
                ::std::panic::AssertUnwindSafe(move || $body),
            );
            if let Err(__panic) = __outcome {
                eprintln!(
                    "proptest case {}/{} of `{}` failed with input {}",
                    __case + 1,
                    __cfg.cases,
                    stringify!($name),
                    __input,
                );
                ::std::panic::resume_unwind(__panic);
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let mut c = crate::TestRng::deterministic("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn range_and_collection_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..200 {
            let v = (3u16..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let xs = crate::collection::vec(0u8..4, 2..6).generate(&mut rng);
            assert!(xs.len() >= 2 && xs.len() < 6);
            assert!(xs.iter().all(|&x| x < 4));
            let set = crate::collection::hash_set(0u16..512, 1..64).generate(&mut rng);
            assert!(!set.is_empty() && set.len() < 64);
            let idx = any::<sample::Index>().generate(&mut rng);
            assert!(idx.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..Default::default() })]

        /// Mixed parameter styles exercise the macro muncher.
        #[test]
        fn macro_smoke(cid: u16, nlb in 0u16..64, pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(nlb < 64);
            prop_assert!(pick == 1 || pick == 2);
            prop_assert_eq!(cid, cid);
        }

        #[test]
        fn tuple_and_vec(ops in crate::collection::vec((0u64..64, 1u64..4, any::<u8>()), 1..40)) {
            prop_assert!(!ops.is_empty() && ops.len() < 40);
            for (a, b, _c) in ops {
                prop_assert!(a < 64 && (1..4).contains(&b));
            }
        }
    }
}
