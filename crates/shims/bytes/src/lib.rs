//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace vendors the *minimal* API surface it actually uses: cheaply
//! clonable immutable [`Bytes`], a growable [`BytesMut`] builder, and the
//! little-endian [`BufMut`] putters. Semantics match the real crate for
//! this subset; swapping the real dependency back in is a one-line change
//! in the workspace manifest.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous slice of memory.
///
/// Clones share one allocation (`Arc<Vec<u8>>`), so passing payloads
/// between simulated initiators, fabrics and targets never copies data —
/// the zero-copy property the NVMe-oPF queues rely on. The `Vec` backing
/// (rather than `Arc<[u8]>`) makes `From<Vec<u8>>` and
/// [`BytesMut::freeze`] true moves, matching the real crate: a payload is
/// allocated exactly once, where it is built.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice (copies here, unlike the real crate — fine for
    /// the small headers this workspace uses it on).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Copy a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// A new `Bytes` holding `self[range]`.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.data.len() > 32 {
            write!(f, "..{} bytes", self.data.len())?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        // A move, not a copy: the Vec's allocation becomes the shared
        // payload buffer.
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data.as_slice() == other.as_slice()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write primitives, as used by the PDU and HDF5 encoders.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_sharing() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xDEADBEEF);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 10);
        let frozen = b.freeze();
        assert_eq!(&frozen[..3], &[0xAB, 0x34, 0x12]);
        let clone = frozen.clone();
        assert_eq!(clone, frozen);
        assert_eq!(clone.to_vec(), frozen.to_vec());
    }

    #[test]
    fn from_vec_and_slice() {
        let v = vec![9u8; 4096];
        let b = Bytes::from(v.clone());
        assert_eq!(b.len(), 4096);
        assert_eq!(b, v);
        assert_eq!(Bytes::copy_from_slice(&v), b);
        assert_eq!(b.slice(1..3).to_vec(), vec![9u8, 9]);
    }
}
