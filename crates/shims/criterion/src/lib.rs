//! Offline stand-in for the `criterion` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace vendors a minimal timing harness with the subset of the
//! criterion API that `crates/bench` uses: [`Criterion`],
//! [`Criterion::bench_function`] / [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark runs a warmup plus `sample_size` timed samples and
//! prints mean ns/iter — enough to eyeball regressions; no statistics, no
//! report files.

use std::time::Instant;

/// How batched setup cost is amortized. This shim re-runs setup per
/// iteration for every variant, which matches `PerIteration` and is a safe
/// over-approximation for the others.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh setup for every routine invocation.
    PerIteration,
    /// Accepted for compatibility; treated as `PerIteration`.
    SmallInput,
    /// Accepted for compatibility; treated as `PerIteration`.
    LargeInput,
}

/// Units-of-work annotation; recorded to scale the printed rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `routine` over the sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Time `routine` with per-iteration `setup` excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total: u128 = 0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

fn run_one(
    label: &str,
    sample_size: u64,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warmup: one untimed invocation so lazy init and caches settle.
    let mut warm = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    f(&mut warm);
    let mut b = Bencher {
        iters: sample_size,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns as f64 / b.iters.max(1) as f64;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let rate = n as f64 * 1e9 / per_iter;
            println!("bench {label:<40} {per_iter:>14.1} ns/iter  ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let rate = n as f64 * 1e9 / per_iter / (1024.0 * 1024.0);
            println!("bench {label:<40} {per_iter:>14.1} ns/iter  ({rate:.1} MiB/s)");
        }
        _ => println!("bench {label:<40} {per_iter:>14.1} ns/iter"),
    }
}

/// Top-level benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), 20, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A named group; carries per-group sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate units-of-work per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set iterations per timed sample.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// End the group (printing already happened per-bench).
    pub fn finish(self) {}
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
