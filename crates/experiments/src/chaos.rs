//! Chaos artifact: graceful degradation under fault injection.
//!
//! Sweeps per-PDU loss rate × coalescing window size on the canonical
//! 1 LS : 4 TC read scenario (NVMe-oPF, 100 Gbps) with the recovery
//! machinery enabled (per-command retry, re-drain watchdog). The claim
//! under test: as loss grows, TC throughput and LS tail latency degrade
//! gracefully — every submitted request still completes exactly once,
//! and the LS tail stays bounded instead of inverting behind stuck TC
//! windows.
//!
//! Saved as `chaos.csv`.

use crate::sweep::run_all;
use crate::Durations;
use fabric::Gbps;
use simkit::metrics::format_f64;
use workload::scenario::WindowSpec;
use workload::{Mix, RuntimeKind, Scenario, Table};

/// Per-PDU loss rates swept (0 = fault-free control run).
pub const LOSS_RATES: [f64; 4] = [0.0, 0.005, 0.01, 0.02];

/// Coalescing window sizes swept.
pub const WINDOWS: [u32; 2] = [8, 32];

fn profile(loss: f64) -> faults::FaultProfile {
    // Timeouts sit well above healthy tail latency (p99.99 ≈ 0.3–0.6 ms
    // at these window sizes), so the fault-free control row shows zero
    // retries/redrains and the sweep isolates loss-driven recovery.
    faults::FaultProfile {
        drop_p: loss,
        retry: Some(nvmf::RetryPolicy {
            timeout: simkit::SimDuration::from_micros(2_000),
            max_retries: 8,
        }),
        redrain_timeout: Some(simkit::SimDuration::from_micros(2_000)),
        ..faults::FaultProfile::default()
    }
}

/// The loss × window scenario grid, in sweep order. Shared with the
/// zero-copy differential test (fault-profile variant).
pub fn scenarios(d: Durations) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for &loss in &LOSS_RATES {
        for &window in &WINDOWS {
            let mut sc = Scenario::ratio(RuntimeKind::Opf, Gbps::G100, Mix::READ, 1, 4);
            sc.window = WindowSpec::Static(window);
            sc.faults = Some(profile(loss));
            d.apply(&mut sc);
            scenarios.push(sc);
        }
    }
    scenarios
}

/// Render the degradation table from the results of [`scenarios`].
pub fn table(results: &[workload::RunResult]) -> Table {
    let mut t = Table::new([
        "loss",
        "window",
        "tc_kiops",
        "ls_p9999_us",
        "completion_pct",
        "retries",
        "redrains",
        "drops",
    ]);
    let mut i = 0;
    for &loss in &LOSS_RATES {
        for &window in &WINDOWS {
            let r = &results[i];
            i += 1;
            let m = &r.metrics;
            let offered = m.get("faults.offered").unwrap_or(0.0);
            let goodput = m.get("faults.goodput").unwrap_or(0.0);
            let pct = if offered > 0.0 {
                100.0 * goodput / offered
            } else {
                0.0
            };
            t.row([
                format_f64(loss),
                window.to_string(),
                format!("{:.1}", r.tc_iops / 1e3),
                format!("{:.1}", r.ls_p9999_us),
                format!("{pct:.3}"),
                format_f64(m.get("faults.retries").unwrap_or(0.0)),
                format_f64(m.get("faults.redrains").unwrap_or(0.0)),
                format_f64(m.get("faults.drops").unwrap_or(0.0)),
            ]);
        }
    }
    t
}

/// Run the loss × window grid and emit the degradation table.
pub fn all(d: Durations, threads: Option<usize>) {
    println!("== Chaos: loss rate x window size, NVMe-oPF 1 LS : 4 TC read, 100 Gbps ==\n");
    let results = run_all(&scenarios(d), threads);
    let t = table(&results);
    println!("{}", workload::render_table(&t));
    crate::save_csv("chaos", &t);
}
