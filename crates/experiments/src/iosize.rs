//! Extension experiment: I/O size and access-pattern sensitivity.
//!
//! The paper evaluates 4K sequential I/O only, noting (§IV-B) that large
//! I/O splits into multiple data PDUs while coalescing reduces only
//! *completion* packets. This sweep quantifies the implication: the
//! benefit of completion coalescing shrinks as I/O size grows (data
//! transfer amortizes the per-request response cost) and is insensitive
//! to sequential-vs-random addressing (the response path doesn't touch
//! the media address).

use crate::sweep::run_all;
use crate::Durations;
use fabric::Gbps;
use workload::report::fmt_iops;
use workload::{Mix, Pattern, RuntimeKind, Scenario, Table};

/// Run the I/O-size × pattern sweep and print the table.
pub fn all(d: Durations, threads: Option<usize>) {
    println!("== Extension: I/O size and access pattern (1 TC, read, 100 Gbps) ==\n");
    let sizes: [u16; 5] = [1, 4, 16, 32, 64]; // 4K .. 256K
    let mut scenarios = Vec::new();
    for pattern in [Pattern::Sequential, Pattern::Random] {
        for runtime in [RuntimeKind::Spdk, RuntimeKind::Opf] {
            for &blocks in &sizes {
                let mut sc = Scenario::ratio(runtime, Gbps::G100, Mix::READ, 0, 1);
                sc.io_blocks = blocks;
                sc.pattern = pattern;
                d.apply(&mut sc);
                scenarios.push(sc);
            }
        }
    }
    let results = run_all(&scenarios, threads);

    let mut t = Table::new([
        "pattern", "io size", "S IOPS", "PF IOPS", "PF/S", "S MB/s", "PF MB/s",
    ]);
    let mut it = results.chunks(sizes.len());
    for pattern in ["sequential", "random"] {
        let s_rows = it.next().unwrap();
        let o_rows = it.next().unwrap();
        for (i, &blocks) in sizes.iter().enumerate() {
            let s = &s_rows[i];
            let o = &o_rows[i];
            t.row([
                pattern.to_string(),
                format!("{}K", 4 * blocks),
                fmt_iops(s.tc_iops),
                fmt_iops(o.tc_iops),
                format!("{:.2}x", o.tc_iops / s.tc_iops.max(1.0)),
                format!("{:.0}", s.tc_mb_s),
                format!("{:.0}", o.tc_mb_s),
            ]);
        }
    }
    println!("{}", workload::render_table(&t));
    crate::save_csv("iosize", &t);
}
