//! Figure 6: initial benefit analysis.
//!
//! * (a) throughput/latency across window sizes, 1 TC + 1 LS initiator;
//! * (b) throughput across window sizes × network speeds, 1 TC initiator;
//! * (c) completion-notification counts, SPDK vs NVMe-oPF.

use crate::sweep::run_all;
use crate::Durations;
use fabric::Gbps;
use workload::report::fmt_iops;
use workload::{Mix, RuntimeKind, Scenario, Table, WindowSpec};

const WINDOWS: [u32; 6] = [2, 4, 8, 16, 32, 64];

fn scenario(
    runtime: RuntimeKind,
    speed: Gbps,
    ls: usize,
    tc: usize,
    window: WindowSpec,
    d: Durations,
) -> Scenario {
    let mut sc = Scenario::ratio(runtime, speed, Mix::READ, ls, tc);
    sc.window = window;
    d.apply(&mut sc);
    sc
}

/// Figure 6(a): window-size sweep with one TC and one LS tenant.
pub fn fig6a(d: Durations, threads: Option<usize>) {
    println!("== Fig 6(a): throughput/latency vs window size (1 LS + 1 TC, read) ==\n");
    let speeds = [Gbps::G25, Gbps::G100];
    let mut scenarios = Vec::new();
    for &speed in &speeds {
        scenarios.push(scenario(
            RuntimeKind::Spdk,
            speed,
            1,
            1,
            WindowSpec::Auto,
            d,
        ));
        for &w in &WINDOWS {
            scenarios.push(scenario(
                RuntimeKind::Opf,
                speed,
                1,
                1,
                WindowSpec::Static(w),
                d,
            ));
        }
    }
    let results = run_all(&scenarios, threads);

    let mut t = Table::new(["speed", "config", "TC IOPS", "TC avg lat", "LS avg lat"]);
    let mut it = results.iter();
    for &speed in &speeds {
        let s = it.next().unwrap();
        t.row([
            speed.to_string(),
            "SPDK".into(),
            fmt_iops(s.tc_iops),
            format!("{:.0}us", s.tc_avg_us),
            format!("{:.0}us", s.ls_avg_us),
        ]);
        for &w in &WINDOWS {
            let r = it.next().unwrap();
            t.row([
                speed.to_string(),
                format!("PF W={w}"),
                fmt_iops(r.tc_iops),
                format!("{:.0}us", r.tc_avg_us),
                format!("{:.0}us", r.ls_avg_us),
            ]);
        }
    }
    println!("{}", workload::render_table(&t));
    crate::save_csv("fig6a", &t);
}

/// Figure 6(b): window-size sweep × network speed, single TC tenant.
pub fn fig6b(d: Durations, threads: Option<usize>) {
    println!("== Fig 6(b): throughput vs window size across 10/25/100 Gbps (1 TC, read) ==\n");
    let mut scenarios = Vec::new();
    for speed in Gbps::ALL {
        scenarios.push(scenario(
            RuntimeKind::Spdk,
            speed,
            0,
            1,
            WindowSpec::Auto,
            d,
        ));
        for &w in &WINDOWS {
            scenarios.push(scenario(
                RuntimeKind::Opf,
                speed,
                0,
                1,
                WindowSpec::Static(w),
                d,
            ));
        }
    }
    let results = run_all(&scenarios, threads);

    let mut headers = vec!["speed".to_string(), "SPDK".to_string()];
    headers.extend(WINDOWS.iter().map(|w| format!("PF W={w}")));
    let mut t = Table::new(headers);
    let mut it = results.iter();
    for speed in Gbps::ALL {
        let mut row = vec![speed.to_string()];
        row.push(fmt_iops(it.next().unwrap().tc_iops));
        for _ in &WINDOWS {
            row.push(fmt_iops(it.next().unwrap().tc_iops));
        }
        t.row(row);
    }
    println!("{}", workload::render_table(&t));
    crate::save_csv("fig6b", &t);
}

/// The Figure 6(c) scenario list (read and write, SPDK QD 1/128 vs
/// NVMe-oPF windows). Shared with the hot-path benchmark and the
/// zero-copy differential test so they measure the artifact path itself.
pub fn fig6c_scenarios(d: Durations) -> Vec<workload::Scenario> {
    let speed = Gbps::G100;
    let mixes = [Mix::READ, Mix::WRITE];
    let mut scenarios = Vec::new();
    for &mix in &mixes {
        // SPDK at QD 1 (a latency-style initiator) and QD 128.
        for qd in [1usize, 128] {
            let mut sc = Scenario::ratio(RuntimeKind::Spdk, speed, mix, 0, 1);
            sc.tc_qd = qd;
            d.apply(&mut sc);
            scenarios.push(sc);
        }
        for w in [16u32, 32, 64] {
            let mut sc = Scenario::ratio(RuntimeKind::Opf, speed, mix, 0, 1);
            sc.window = WindowSpec::Static(w);
            d.apply(&mut sc);
            scenarios.push(sc);
        }
    }
    scenarios
}

/// Render the Figure 6(c) table from the results of
/// [`fig6c_scenarios`], in order.
pub fn fig6c_table(results: &[workload::RunResult]) -> Table {
    let mixes = [Mix::READ, Mix::WRITE];
    let mut t = Table::new([
        "workload",
        "config",
        "completed",
        "notifications",
        "notif/req",
        "coalesce",
        "drain avg",
    ]);
    let mut it = results.iter();
    for &mix in &mixes {
        for label in ["S QD=1", "S QD=128", "PF W=16", "PF W=32", "PF W=64"] {
            let r = it.next().unwrap();
            // Snapshot-derived columns: the target's completions-per-
            // response ratio and the initiator-observed drain latency
            // (both 0/"-" for the SPDK baseline, which never drains).
            let coalesce = r.metrics.get("pair0.tgt.coalesce_ratio").unwrap_or(0.0);
            let drain = match r.metrics.get("ini0.drain_latency_avg_us") {
                Some(us) if us > 0.0 => format!("{us:.0}us"),
                _ => "-".to_string(),
            };
            t.row([
                mix.label().to_string(),
                label.to_string(),
                r.completed.to_string(),
                r.notifications.to_string(),
                format!("{:.3}", r.notifications as f64 / r.completed.max(1) as f64),
                format!("{coalesce:.1}"),
                drain,
            ]);
        }
    }
    t
}

/// Figure 6(c): completion notifications generated during the measure
/// window (read and write, SPDK QD 1/128 vs NVMe-oPF windows).
pub fn fig6c(d: Durations, threads: Option<usize>) {
    println!("== Fig 6(c): completion notification counts (1 TC initiator, 100 Gbps) ==\n");
    let scenarios = fig6c_scenarios(d);
    let results = run_all(&scenarios, threads);
    let t = fig6c_table(&results);
    println!("{}", workload::render_table(&t));
    crate::save_csv("fig6c", &t);
}
