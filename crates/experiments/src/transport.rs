//! Extension experiment: TCP vs RDMA transport.
//!
//! SPDK's NVMe-oF target supports both TCP and RDMA; the paper evaluates
//! TCP only ("we methodically design and assess NVMe-oPF request
//! completion coalescing for the TCP/IP channel"). This sweep asks the
//! natural follow-up: how much of NVMe-oPF's benefit survives on RDMA,
//! where per-message host costs are far lower (data lands by RDMA
//! WRITE/READ with zero initiator CPU and verbs sends are cheap)?
//!
//! Expected shape: the RDMA baseline runs faster — its per-request
//! completion path is cheaper — so coalescing has less to amortize and
//! NVMe-oPF's relative gain shrinks, but the LS-bypass tail benefit
//! remains, since FIFO head-of-line blocking is transport-independent.

use crate::sweep::run_all;
use crate::Durations;
use fabric::Gbps;
use workload::report::{fmt_iops, fmt_us};
use workload::{Mix, RuntimeKind, Scenario, Table, Transport};

/// Run the transport comparison and print the table.
pub fn all(d: Durations, threads: Option<usize>) {
    println!("== Extension: TCP vs RDMA transport (1 LS : 4 TC, read, 10 & 100 Gbps) ==\n");
    let mut scenarios = Vec::new();
    for speed in [Gbps::G10, Gbps::G100] {
        for transport in [Transport::Tcp, Transport::Rdma] {
            for runtime in [RuntimeKind::Spdk, RuntimeKind::Opf] {
                let mut sc = Scenario::ratio(runtime, speed, Mix::READ, 1, 4);
                sc.transport = transport;
                d.apply(&mut sc);
                scenarios.push(sc);
            }
        }
    }
    let results = run_all(&scenarios, threads);

    let mut t = Table::new([
        "speed",
        "transport",
        "S IOPS",
        "PF IOPS",
        "PF/S",
        "S LS p99.99",
        "PF LS p99.99",
    ]);
    let mut it = results.chunks(2);
    for speed in ["10 Gbps", "10 Gbps", "100 Gbps", "100 Gbps"] {
        let transport = if t.rows.len().is_multiple_of(2) {
            "TCP"
        } else {
            "RDMA"
        };
        let pair = it.next().unwrap();
        let (s, o) = (&pair[0], &pair[1]);
        t.row([
            speed.to_string(),
            transport.to_string(),
            fmt_iops(s.tc_iops),
            fmt_iops(o.tc_iops),
            format!("{:.2}x", o.tc_iops / s.tc_iops.max(1.0)),
            fmt_us(s.ls_p9999_us),
            fmt_us(o.ls_p9999_us),
        ]);
    }
    println!("{}", workload::render_table(&t));
    crate::save_csv("transport", &t);
}
