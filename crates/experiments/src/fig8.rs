//! Figure 8: scale-out studies at 100 Gbps with 5 initiator-node /
//! target-node pairs.
//!
//! * Pattern 1 (a–c): fixed 5 pairs, 1..5 initiators per node.
//! * Pattern 2 (d–f): fixed 4 initiators per node (LS:TC 0:4), 1..5
//!   node pairs.

use crate::sweep::run_all;
use crate::Durations;
use fabric::Gbps;
use workload::report::{fmt_iops, fmt_us};
use workload::{Mix, RuntimeKind, Scenario, Table};

fn pattern1(runtime: RuntimeKind, mix: Mix, per_node: usize, d: Durations) -> Scenario {
    let mut sc = Scenario::ratio(runtime, Gbps::G100, mix, 0, per_node);
    sc.pairs = 5;
    d.apply(&mut sc);
    sc
}

fn pattern2(runtime: RuntimeKind, mix: Mix, pairs: usize, d: Durations) -> Scenario {
    let mut sc = Scenario::ratio(runtime, Gbps::G100, mix, 0, 4);
    sc.pairs = pairs;
    d.apply(&mut sc);
    sc
}

/// One panel (one workload, one pattern).
fn panel(mix: Mix, pattern: u8, d: Durations, threads: Option<usize>) -> Table {
    let points: Vec<usize> = (1..=5).collect();
    let mut scenarios = Vec::new();
    for runtime in [RuntimeKind::Spdk, RuntimeKind::Opf] {
        for &p in &points {
            scenarios.push(match pattern {
                1 => pattern1(runtime, mix, p, d),
                _ => pattern2(runtime, mix, p, d),
            });
        }
    }
    let results = run_all(&scenarios, threads);
    let mut t = Table::new([
        "initiators",
        "S IOPS",
        "PF IOPS",
        "PF/S",
        "S avg lat",
        "PF avg lat",
    ]);
    for (i, &p) in points.iter().enumerate() {
        let s = &results[i];
        let o = &results[points.len() + i];
        let total = match pattern {
            1 => 5 * p,
            _ => 4 * p,
        };
        t.row([
            total.to_string(),
            fmt_iops(s.tc_iops),
            fmt_iops(o.tc_iops),
            format!("{:.2}x", o.tc_iops / s.tc_iops.max(1.0)),
            fmt_us(s.tc_avg_us),
            fmt_us(o.tc_avg_us),
        ]);
    }
    t
}

/// All of Figure 8.
pub fn all(d: Durations, threads: Option<usize>) {
    let panels = [
        (Mix::READ, 1, "a", "read, 5 pairs, scaling initiators/node"),
        (
            Mix::MIXED,
            1,
            "b",
            "mixed 50:50, 5 pairs, scaling initiators/node",
        ),
        (
            Mix::WRITE,
            1,
            "c",
            "write, 5 pairs, scaling initiators/node",
        ),
        (
            Mix::READ,
            2,
            "d",
            "read, 4 initiators/node, scaling node pairs",
        ),
        (
            Mix::MIXED,
            2,
            "e",
            "mixed 50:50, 4 initiators/node, scaling node pairs",
        ),
        (
            Mix::WRITE,
            2,
            "f",
            "write, 4 initiators/node, scaling node pairs",
        ),
    ];
    for (mix, pattern, tag, desc) in panels {
        println!("== Fig 8({tag}): {desc}, 100 Gbps ==\n");
        let t = panel(mix, pattern, d, threads);
        println!("{}", workload::render_table(&t));
        crate::save_csv(&format!("fig8{tag}"), &t);
    }
}
