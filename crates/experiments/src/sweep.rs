//! Parallel execution of independent scenario runs.
//!
//! Every simulation is single-threaded and deterministic; a figure is a
//! set of independent `(Scenario, seed)` points, so the sweep fans them
//! out across OS threads (guide idiom: data-race freedom by construction
//! — each worker owns its scenarios, results come back through a
//! mutex-guarded vector indexed by position).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use workload::{run, RunResult, Scenario};

/// Run all scenarios, preserving input order, using up to
/// `threads` workers (defaults to available parallelism).
pub fn run_all(scenarios: &[Scenario], threads: Option<usize>) -> Vec<RunResult> {
    let n = scenarios.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
        .clamp(1, n);
    if workers == 1 {
        return scenarios.iter().map(run).collect();
    }

    let results: Mutex<Vec<Option<RunResult>>> = Mutex::new(vec![None; n]);
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = run(&scenarios[i]);
                results.lock().unwrap()[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::Gbps;
    use workload::{Mix, RuntimeKind};

    fn tiny(seed: u64) -> Scenario {
        let mut sc = Scenario::ratio(RuntimeKind::Opf, Gbps::G100, Mix::READ, 0, 1);
        sc.warmup_s = 0.01;
        sc.measure_s = 0.03;
        sc.seed = seed;
        sc
    }

    #[test]
    fn parallel_matches_serial() {
        let scenarios: Vec<Scenario> = (0..6).map(tiny).collect();
        let serial = run_all(&scenarios, Some(1));
        let parallel = run_all(&scenarios, Some(4));
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    fn empty_input() {
        assert!(run_all(&[], None).is_empty());
    }

    #[test]
    fn order_preserved() {
        // Different seeds give different event counts; check positions.
        let scenarios: Vec<Scenario> = (0..4).map(tiny).collect();
        let serial = run_all(&scenarios, Some(1));
        let parallel = run_all(&scenarios, Some(2));
        let se: Vec<u64> = serial.iter().map(|r| r.events).collect();
        let pe: Vec<u64> = parallel.iter().map(|r| r.events).collect();
        assert_eq!(se, pe);
    }
}
