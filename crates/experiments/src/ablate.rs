//! Design-choice ablations (DESIGN.md §6).
//!
//! All at 100 Gbps, read workload, 1 LS : 4 TC — the configuration where
//! every mechanism matters — each row removes one design element:
//!
//! * coalescing (window=1: every TC request drains itself);
//! * per-initiator queues (shared TC queue, §IV-A's hazard);
//! * LS bypass (LS rides the metered TC path);
//! * static table vs dynamic window optimization.

use crate::sweep::run_all;
use crate::Durations;
use fabric::Gbps;
use workload::report::{fmt_iops, fmt_us};
use workload::{Mix, RuntimeKind, Scenario, Table, WindowSpec};

/// Run the ablation grid and print the table.
pub fn all(d: Durations, threads: Option<usize>) {
    println!("== Ablations: 100 Gbps, read, LS:TC = 1:4 ==\n");
    let base = |runtime| {
        let mut sc = Scenario::ratio(runtime, Gbps::G100, Mix::READ, 1, 4);
        d.apply(&mut sc);
        sc
    };

    let mut scenarios = Vec::new();
    let mut labels = Vec::new();

    labels.push("SPDK baseline");
    scenarios.push(base(RuntimeKind::Spdk));

    labels.push("NVMe-oPF (full, auto window)");
    scenarios.push(base(RuntimeKind::Opf));

    labels.push("  - coalescing (window = 1)");
    let mut sc = base(RuntimeKind::Opf);
    sc.window = WindowSpec::Static(1);
    scenarios.push(sc);

    labels.push("  - per-initiator queues (shared TC queue)");
    let mut sc = base(RuntimeKind::Opf);
    sc.shared_queue = true;
    scenarios.push(sc);

    labels.push("  - LS bypass");
    let mut sc = base(RuntimeKind::Opf);
    sc.no_ls_bypass = true;
    scenarios.push(sc);

    labels.push("  dynamic window optimizer");
    let mut sc = base(RuntimeKind::Opf);
    sc.window = WindowSpec::Dynamic;
    scenarios.push(sc);

    labels.push("  small static window (8)");
    let mut sc = base(RuntimeKind::Opf);
    sc.window = WindowSpec::Static(8);
    scenarios.push(sc);

    labels.push("  large static window (64)");
    let mut sc = base(RuntimeKind::Opf);
    sc.window = WindowSpec::Static(64);
    scenarios.push(sc);

    let results = run_all(&scenarios, threads);
    let mut t = Table::new([
        "configuration",
        "TC IOPS",
        "LS p99.99",
        "LS avg",
        "notif/req",
        "reactor util",
    ]);
    for (label, r) in labels.iter().zip(&results) {
        t.row([
            label.to_string(),
            fmt_iops(r.tc_iops),
            fmt_us(r.ls_p9999_us),
            fmt_us(r.ls_avg_us),
            format!("{:.3}", r.notifications as f64 / r.completed.max(1) as f64),
            format!("{:.0}%", r.reactor_util * 100.0),
        ]);
    }
    println!("{}", workload::render_table(&t));
    crate::save_csv("ablations", &t);
}
