//! # campaign — seeds × traffic-scenario grids with expectation gates
//!
//! A campaign spec (JSON) names a set of traffic scenarios (each an
//! open-loop [`TrafficSpec`] plus a few topology knobs), a seed list,
//! and a list of declarative *expectations*. The runner expands the
//! `scenarios × seeds` grid in a canonical order, fans it out across
//! threads ([`crate::sweep::run_all`]), computes cross-seed summary
//! statistics (mean/stddev/p99/min/max per metric), evaluates the
//! expectations, and writes `results/campaign_<name>/summary.json` +
//! `summary.csv` — bit-identical across runs of the same spec, which is
//! what lets CI gate on them.
//!
//! ## Spec schema
//!
//! ```json
//! {
//!   "name": "quick",
//!   "seeds": [1, 2, 3],
//!   "warmup_s": 0.02, "measure_s": 0.06,
//!   "ls": 1, "tc": 2,
//!   "runtime": "opf", "speed": 100,
//!   "scenarios": [
//!     {"name": "poisson", "traffic": {"model": "poisson", "rate_kiops": 40}},
//!     {"name": "lossy",   "traffic": {"model": "poisson"}, "drop_p": 0.01}
//!   ],
//!   "expectations": [
//!     {"scenario": "*", "check": "exactly_once"},
//!     {"scenario": "*", "check": "completion_floor", "min": 0.9},
//!     {"scenario": "poisson", "check": "fairness_spread", "max": 0.3},
//!     {"scenario": "poisson", "metric": "ls.p9999_us", "stat": "p99", "max": 500}
//!   ]
//! }
//! ```
//!
//! Expectation vocabulary: `exactly_once` (every offered open-loop
//! arrival completed exactly once, no exhausted retries),
//! `completion_floor` (min over seeds of `traffic.completion_ratio` ≥
//! `min`), `fairness_spread` (max over seeds of
//! `traffic.fairness_spread` ≤ `max`), or a raw metric bound (`metric`
//! plus a `stat` of `mean|stddev|p99|min|max`, with `min`/`max` bounds
//! applied to the cross-seed statistic). Unknown keys anywhere in the
//! spec are hard errors — never silent no-ops — and every parse failure
//! is a typed [`CampaignError`], never a panic.

use crate::sweep::run_all;
use fabric::Gbps;
use simkit::json::{escape, parse, Json};
use simkit::metrics::format_f64;
use std::fmt;
use std::path::{Path, PathBuf};
use workload::{Mix, RunResult, RuntimeKind, Scenario, TrafficSpec};

/// Typed campaign-spec / evaluation error. `Display` is the user-facing
/// message; the variants are what the negative-path tests pin down.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// JSON syntax error or a structurally invalid spec.
    Parse(String),
    /// An object carried a key outside its schema.
    UnknownKey {
        /// Where ("" = spec root, "expectations[2]", …).
        ctx: String,
        /// The offending key.
        key: String,
    },
    /// An expectation bound was NaN or infinite.
    NanBound {
        /// Which expectation.
        ctx: String,
    },
    /// The same seed appeared twice — cross-seed stats would
    /// double-count a run.
    DuplicateSeed(u64),
    /// The expanded grid is empty (no seeds or no scenarios).
    EmptyGrid,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Parse(msg) => write!(f, "campaign spec: {msg}"),
            CampaignError::UnknownKey { ctx, key } => {
                let at = if ctx.is_empty() { "spec root" } else { ctx };
                write!(f, "campaign spec: unknown key \"{key}\" in {at}")
            }
            CampaignError::NanBound { ctx } => {
                write!(f, "campaign spec: non-finite bound in {ctx}")
            }
            CampaignError::DuplicateSeed(s) => {
                write!(
                    f,
                    "campaign spec: duplicate seed {s} (cross-seed stats would double-count)"
                )
            }
            CampaignError::EmptyGrid => {
                write!(
                    f,
                    "campaign spec: empty grid (needs >= 1 seed and >= 1 scenario)"
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// Cross-seed statistic an expectation can bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stat {
    /// Arithmetic mean across seeds.
    Mean,
    /// Population standard deviation across seeds.
    Stddev,
    /// Nearest-rank p99 across seeds (= max for small seed counts).
    P99,
    /// Minimum across seeds.
    Min,
    /// Maximum across seeds.
    Max,
}

impl Stat {
    fn parse(s: &str) -> Option<Stat> {
        Some(match s {
            "mean" => Stat::Mean,
            "stddev" => Stat::Stddev,
            "p99" => Stat::P99,
            "min" => Stat::Min,
            "max" => Stat::Max,
            _ => return None,
        })
    }

    fn label(&self) -> &'static str {
        match self {
            Stat::Mean => "mean",
            Stat::Stddev => "stddev",
            Stat::P99 => "p99",
            Stat::Min => "min",
            Stat::Max => "max",
        }
    }

    fn of(&self, values: &[f64]) -> f64 {
        match self {
            Stat::Mean => mean(values),
            Stat::Stddev => stddev(values),
            Stat::P99 => percentile(values, 0.99),
            Stat::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Stat::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// One declarative check.
#[derive(Clone, Debug, PartialEq)]
pub enum Check {
    /// `traffic.offered == traffic.done` on every seed, and no
    /// exhausted retries where a fault plane reports them.
    ExactlyOnce,
    /// Min over seeds of `traffic.completion_ratio` must be ≥ `min`.
    CompletionFloor {
        /// The floor.
        min: f64,
    },
    /// Max over seeds of `traffic.fairness_spread` must be ≤ `max`.
    FairnessSpread {
        /// The ceiling.
        max: f64,
    },
    /// Bound a cross-seed statistic of an arbitrary metric key.
    Metric {
        /// Metric key (e.g. `ls.p9999_us`).
        metric: String,
        /// Which cross-seed statistic.
        stat: Stat,
        /// Lower bound, if any.
        min: Option<f64>,
        /// Upper bound, if any.
        max: Option<f64>,
    },
}

/// An expectation: a [`Check`] applied to one scenario or (`"*"`) all.
#[derive(Clone, Debug, PartialEq)]
pub struct Expectation {
    /// Scenario name, or `"*"` for every scenario.
    pub scenario: String,
    /// The check.
    pub check: Check,
}

/// One traffic scenario of the campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignScenario {
    /// Row name — referenced by expectations and the summary.
    pub name: String,
    /// Open-loop traffic block (required: campaigns are about traffic).
    pub traffic: TrafficSpec,
    /// LS tenant count override.
    pub ls: Option<usize>,
    /// TC tenant count override.
    pub tc: Option<usize>,
    /// Per-PDU drop probability — a lossy-fabric knob (installs a fault
    /// plane with a deep retry budget).
    pub drop_p: f64,
    /// Kernel shard count.
    pub shards: usize,
    /// Mailbox-mesh cross-shard routing.
    pub parallel: bool,
}

/// A parsed campaign specification.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name: output lands in `results/campaign_<name>/`.
    pub name: String,
    /// Seeds (duplicate-free; each scenario runs once per seed).
    pub seeds: Vec<u64>,
    /// Warmup seconds per run.
    pub warmup_s: f64,
    /// Measured seconds per run.
    pub measure_s: f64,
    /// Default LS tenants per scenario.
    pub ls: usize,
    /// Default TC tenants per scenario.
    pub tc: usize,
    /// Runtime under test.
    pub runtime: RuntimeKind,
    /// Fabric speed.
    pub speed: Gbps,
    /// Worker threads (CLI may override).
    pub threads: Option<usize>,
    /// The scenario rows.
    pub scenarios: Vec<CampaignScenario>,
    /// The expectation gates.
    pub expectations: Vec<Expectation>,
}

fn check_keys(v: &Json, ctx: &str, allowed: &[&str]) -> Result<(), CampaignError> {
    match v {
        Json::Obj(fields) => {
            for (k, _) in fields {
                if !allowed.contains(&k.as_str()) {
                    return Err(CampaignError::UnknownKey {
                        ctx: ctx.to_string(),
                        key: k.clone(),
                    });
                }
            }
            Ok(())
        }
        _ => Err(CampaignError::Parse(format!(
            "{} must be an object",
            if ctx.is_empty() { "spec" } else { ctx }
        ))),
    }
}

fn finite_bound(v: &Json, ctx: &str, key: &str) -> Result<Option<f64>, CampaignError> {
    match v.get(key) {
        None => Ok(None),
        Some(b) => {
            let x = b.as_f64().ok_or_else(|| {
                CampaignError::Parse(format!("{ctx}: \"{key}\" must be a number"))
            })?;
            if !x.is_finite() {
                return Err(CampaignError::NanBound {
                    ctx: ctx.to_string(),
                });
            }
            Ok(Some(x))
        }
    }
}

impl CampaignSpec {
    /// Parse a campaign spec from JSON source.
    pub fn from_json_str(src: &str) -> Result<CampaignSpec, CampaignError> {
        let v = parse(src).map_err(CampaignError::Parse)?;
        CampaignSpec::from_json(&v)
    }

    /// Parse a campaign spec from a parsed JSON value.
    pub fn from_json(v: &Json) -> Result<CampaignSpec, CampaignError> {
        check_keys(
            v,
            "",
            &[
                "name",
                "seeds",
                "warmup_s",
                "measure_s",
                "ls",
                "tc",
                "runtime",
                "speed",
                "threads",
                "scenarios",
                "expectations",
            ],
        )?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| CampaignError::Parse("\"name\" (string) is required".into()))?
            .to_string();

        let mut seeds: Vec<u64> = Vec::new();
        for (i, s) in v
            .get("seeds")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let s = s.as_u64().ok_or_else(|| {
                CampaignError::Parse(format!("seeds[{i}] must be a non-negative integer"))
            })?;
            if seeds.contains(&s) {
                return Err(CampaignError::DuplicateSeed(s));
            }
            seeds.push(s);
        }

        let warmup_s = finite_bound(v, "spec", "warmup_s")?.unwrap_or(0.02);
        let measure_s = finite_bound(v, "spec", "measure_s")?.unwrap_or(0.06);
        if warmup_s < 0.0 || measure_s <= 0.0 {
            return Err(CampaignError::Parse(
                "warmup_s must be >= 0 and measure_s > 0".into(),
            ));
        }
        let ls = v.get("ls").and_then(Json::as_u64).unwrap_or(1) as usize;
        let tc = v.get("tc").and_then(Json::as_u64).unwrap_or(2) as usize;
        let runtime = match v.get("runtime").and_then(Json::as_str).unwrap_or("opf") {
            "opf" => RuntimeKind::Opf,
            "spdk" => RuntimeKind::Spdk,
            other => {
                return Err(CampaignError::Parse(format!(
                    "unknown runtime \"{other}\" (opf | spdk)"
                )))
            }
        };
        let speed = match v.get("speed").and_then(Json::as_u64).unwrap_or(100) {
            10 => Gbps::G10,
            25 => Gbps::G25,
            100 => Gbps::G100,
            other => {
                return Err(CampaignError::Parse(format!(
                    "unknown speed {other} (10 | 25 | 100)"
                )))
            }
        };
        let threads = v.get("threads").and_then(Json::as_u64).map(|t| t as usize);

        let mut scenarios = Vec::new();
        for (i, s) in v
            .get("scenarios")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let ctx = format!("scenarios[{i}]");
            check_keys(
                s,
                &ctx,
                &[
                    "name", "traffic", "ls", "tc", "drop_p", "shards", "parallel",
                ],
            )?;
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| CampaignError::Parse(format!("{ctx}: \"name\" is required")))?
                .to_string();
            if scenarios.iter().any(|c: &CampaignScenario| c.name == name) {
                return Err(CampaignError::Parse(format!(
                    "{ctx}: duplicate scenario name \"{name}\""
                )));
            }
            let traffic = s
                .get("traffic")
                .ok_or_else(|| CampaignError::Parse(format!("{ctx}: \"traffic\" is required")))
                .and_then(|t| {
                    TrafficSpec::from_json(t)
                        .map_err(|e| CampaignError::Parse(format!("{ctx}: {e}")))
                })?;
            let drop_p = finite_bound(s, &ctx, "drop_p")?.unwrap_or(0.0);
            if !(0.0..=1.0).contains(&drop_p) {
                return Err(CampaignError::Parse(format!(
                    "{ctx}: \"drop_p\" must be in [0, 1]"
                )));
            }
            scenarios.push(CampaignScenario {
                name,
                traffic,
                ls: s.get("ls").and_then(Json::as_u64).map(|n| n as usize),
                tc: s.get("tc").and_then(Json::as_u64).map(|n| n as usize),
                drop_p,
                shards: s.get("shards").and_then(Json::as_u64).unwrap_or(1) as usize,
                parallel: s.get("parallel").and_then(Json::as_bool).unwrap_or(false),
            });
        }

        if seeds.is_empty() || scenarios.is_empty() {
            return Err(CampaignError::EmptyGrid);
        }

        let mut expectations = Vec::new();
        for (i, e) in v
            .get("expectations")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let ctx = format!("expectations[{i}]");
            check_keys(
                e,
                &ctx,
                &["scenario", "check", "metric", "stat", "min", "max"],
            )?;
            let scenario = e
                .get("scenario")
                .and_then(Json::as_str)
                .unwrap_or("*")
                .to_string();
            if scenario != "*" && !scenarios.iter().any(|c| c.name == scenario) {
                return Err(CampaignError::Parse(format!(
                    "{ctx}: references unknown scenario \"{scenario}\""
                )));
            }
            let min = finite_bound(e, &ctx, "min")?;
            let max = finite_bound(e, &ctx, "max")?;
            let check = match (e.get("check").and_then(Json::as_str), e.get("metric")) {
                (Some("exactly_once"), None) => {
                    if min.is_some() || max.is_some() {
                        return Err(CampaignError::Parse(format!(
                            "{ctx}: exactly_once takes no bounds"
                        )));
                    }
                    Check::ExactlyOnce
                }
                (Some("completion_floor"), None) => Check::CompletionFloor {
                    min: min.ok_or_else(|| {
                        CampaignError::Parse(format!("{ctx}: completion_floor requires \"min\""))
                    })?,
                },
                (Some("fairness_spread"), None) => Check::FairnessSpread {
                    max: max.ok_or_else(|| {
                        CampaignError::Parse(format!("{ctx}: fairness_spread requires \"max\""))
                    })?,
                },
                (Some(other), None) => {
                    return Err(CampaignError::Parse(format!(
                        "{ctx}: unknown check \"{other}\" \
                         (exactly_once | completion_floor | fairness_spread)"
                    )))
                }
                (None, Some(m)) => {
                    let metric = m
                        .as_str()
                        .ok_or_else(|| {
                            CampaignError::Parse(format!("{ctx}: \"metric\" must be a string"))
                        })?
                        .to_string();
                    let stat = match e.get("stat").and_then(Json::as_str) {
                        None => Stat::Mean,
                        Some(s) => Stat::parse(s).ok_or_else(|| {
                            CampaignError::Parse(format!(
                                "{ctx}: unknown stat \"{s}\" (mean | stddev | p99 | min | max)"
                            ))
                        })?,
                    };
                    if min.is_none() && max.is_none() {
                        return Err(CampaignError::Parse(format!(
                            "{ctx}: a metric expectation needs \"min\" and/or \"max\""
                        )));
                    }
                    Check::Metric {
                        metric,
                        stat,
                        min,
                        max,
                    }
                }
                (Some(_), Some(_)) => {
                    return Err(CampaignError::Parse(format!(
                        "{ctx}: give either \"check\" or \"metric\", not both"
                    )))
                }
                (None, None) => {
                    return Err(CampaignError::Parse(format!(
                        "{ctx}: needs a \"check\" or a \"metric\""
                    )))
                }
            };
            expectations.push(Expectation { scenario, check });
        }

        Ok(CampaignSpec {
            name,
            seeds,
            warmup_s,
            measure_s,
            ls,
            tc,
            runtime,
            speed,
            threads,
            scenarios,
            expectations,
        })
    }
}

/// Build the concrete [`Scenario`] for one grid point.
fn build_scenario(spec: &CampaignSpec, cs: &CampaignScenario, seed: u64) -> Scenario {
    let mut sc = Scenario::ratio(
        spec.runtime,
        spec.speed,
        Mix::READ,
        cs.ls.unwrap_or(spec.ls),
        cs.tc.unwrap_or(spec.tc).max(1),
    );
    sc.warmup_s = spec.warmup_s;
    sc.measure_s = spec.measure_s;
    sc.seed = seed;
    sc.shards = cs.shards.max(1);
    sc.parallel = cs.parallel;
    sc.traffic = Some(cs.traffic.clone());
    if cs.drop_p > 0.0 {
        sc.faults = Some(faults::FaultProfile {
            drop_p: cs.drop_p,
            retry: Some(nvmf::RetryPolicy {
                timeout: simkit::SimDuration::from_micros(300),
                max_retries: 32,
            }),
            ..faults::FaultProfile::default()
        });
    }
    sc
}

/// Cross-seed statistics of one metric.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricStats {
    /// Metric key.
    pub metric: String,
    /// Mean across seeds.
    pub mean: f64,
    /// Population standard deviation across seeds.
    pub stddev: f64,
    /// Nearest-rank p99 across seeds.
    pub p99: f64,
    /// Minimum across seeds.
    pub min: f64,
    /// Maximum across seeds.
    pub max: f64,
}

/// One evaluated expectation against one scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome {
    /// Scenario the check ran against.
    pub scenario: String,
    /// Human/CI-readable check label (`"exactly_once"`,
    /// `"ls.p9999_us p99 <= 500"`, …).
    pub label: String,
    /// The observed statistic (`None` when the metric was missing).
    pub observed: Option<f64>,
    /// Whether the check passed.
    pub pass: bool,
}

/// The evaluated campaign: stats + gate outcomes.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSummary {
    /// Campaign name.
    pub name: String,
    /// The seeds, in spec order.
    pub seeds: Vec<u64>,
    /// Per-scenario cross-seed stats, in spec order.
    pub stats: Vec<(String, Vec<MetricStats>)>,
    /// Every expectation × matching scenario, in spec order.
    pub outcomes: Vec<Outcome>,
    /// True iff every outcome passed.
    pub pass: bool,
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Nearest-rank percentile (q in (0, 1]); `values` need not be sorted.
fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Metric keys carried into the summary: the stable workload-level
/// figures (per-component counters stay in the per-run snapshots; the
/// campaign summary is the cross-seed view CI diffs).
fn summarised(key: &str) -> bool {
    key.starts_with("tc.")
        || key.starts_with("ls.")
        || key.starts_with("traffic.")
        || matches!(key, "completed" | "notifications" | "reactor_util")
}

/// Run the whole grid and evaluate the expectations. `threads`
/// overrides the spec's thread count.
pub fn run_campaign(spec: &CampaignSpec, threads: Option<usize>) -> CampaignSummary {
    let mut grid = Vec::new();
    for cs in &spec.scenarios {
        for &seed in &spec.seeds {
            grid.push(build_scenario(spec, cs, seed));
        }
    }
    let results = run_all(&grid, threads.or(spec.threads));
    let per_scenario: Vec<(&CampaignScenario, &[RunResult])> = spec
        .scenarios
        .iter()
        .zip(results.chunks(spec.seeds.len()))
        .collect();

    let mut stats = Vec::new();
    for (cs, runs) in &per_scenario {
        let mut rows = Vec::new();
        for (key, _) in runs[0].metrics.iter() {
            if !summarised(key) {
                continue;
            }
            let values: Vec<f64> = runs.iter().filter_map(|r| r.metrics.get(key)).collect();
            if values.len() != runs.len() {
                continue;
            }
            rows.push(MetricStats {
                metric: key.to_string(),
                mean: mean(&values),
                stddev: stddev(&values),
                p99: percentile(&values, 0.99),
                min: values.iter().copied().fold(f64::INFINITY, f64::min),
                max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            });
        }
        stats.push((cs.name.clone(), rows));
    }

    let mut outcomes = Vec::new();
    for exp in &spec.expectations {
        for (cs, runs) in &per_scenario {
            if exp.scenario != "*" && exp.scenario != cs.name {
                continue;
            }
            outcomes.push(evaluate(&exp.check, cs, runs));
        }
    }
    let pass = outcomes.iter().all(|o| o.pass);
    CampaignSummary {
        name: spec.name.clone(),
        seeds: spec.seeds.clone(),
        stats,
        outcomes,
        pass,
    }
}

/// Per-seed values of one metric; `None` if any seed lacks the key.
fn seed_values(runs: &[RunResult], key: &str) -> Option<Vec<f64>> {
    let values: Vec<f64> = runs.iter().filter_map(|r| r.metrics.get(key)).collect();
    (values.len() == runs.len()).then_some(values)
}

fn evaluate(check: &Check, cs: &CampaignScenario, runs: &[RunResult]) -> Outcome {
    let scenario = cs.name.clone();
    match check {
        Check::ExactlyOnce => {
            let (label, mut observed, mut pass) = ("exactly_once".to_string(), None, false);
            if let (Some(offered), Some(done)) = (
                seed_values(runs, "traffic.offered"),
                seed_values(runs, "traffic.done"),
            ) {
                let worst = offered
                    .iter()
                    .zip(&done)
                    .map(|(o, d)| (o - d).abs())
                    .fold(0.0_f64, f64::max);
                let exhausted = seed_values(runs, "faults.retry_exhausted")
                    .map_or(0.0, |v| v.iter().copied().fold(0.0, f64::max));
                observed = Some(worst);
                pass = worst == 0.0 && exhausted == 0.0 && offered.iter().all(|&o| o > 0.0);
            }
            Outcome {
                scenario,
                label,
                observed,
                pass,
            }
        }
        Check::CompletionFloor { min } => {
            let observed = seed_values(runs, "traffic.completion_ratio").map(|v| Stat::Min.of(&v));
            Outcome {
                scenario,
                label: format!("completion_floor >= {}", format_f64(*min)),
                pass: observed.is_some_and(|o| o >= *min),
                observed,
            }
        }
        Check::FairnessSpread { max } => {
            let observed = seed_values(runs, "traffic.fairness_spread").map(|v| Stat::Max.of(&v));
            Outcome {
                scenario,
                label: format!("fairness_spread <= {}", format_f64(*max)),
                pass: observed.is_some_and(|o| o <= *max),
                observed,
            }
        }
        Check::Metric {
            metric,
            stat,
            min,
            max,
        } => {
            let observed = seed_values(runs, metric).map(|v| stat.of(&v));
            let bounds = [
                min.map(|b| format!(">= {}", format_f64(b))),
                max.map(|b| format!("<= {}", format_f64(b))),
            ]
            .into_iter()
            .flatten()
            .collect::<Vec<_>>()
            .join(" and ");
            Outcome {
                scenario,
                label: format!("{metric} {} {bounds}", stat.label()),
                pass: observed
                    .is_some_and(|o| min.is_none_or(|b| o >= b) && max.is_none_or(|b| o <= b)),
                observed,
            }
        }
    }
}

/// Deterministic `summary.json` rendering (spec order, shortest
/// round-trip floats, no wall clock).
pub fn render_summary_json(s: &CampaignSummary) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"campaign\": \"{}\",\n", escape(&s.name)));
    let seeds: Vec<String> = s.seeds.iter().map(|x| x.to_string()).collect();
    out.push_str(&format!("  \"seeds\": [{}],\n", seeds.join(", ")));
    out.push_str(&format!(
        "  \"grid_runs\": {},\n",
        s.seeds.len() * s.stats.len()
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, (name, rows)) in s.stats.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"metrics\": [\n",
            escape(name)
        ));
        for (j, m) in rows.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"metric\": \"{}\", \"mean\": {}, \"stddev\": {}, \
                 \"p99\": {}, \"min\": {}, \"max\": {}}}{}\n",
                escape(&m.metric),
                format_f64(m.mean),
                format_f64(m.stddev),
                format_f64(m.p99),
                format_f64(m.min),
                format_f64(m.max),
                if j + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < s.stats.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"expectations\": [\n");
    for (i, o) in s.outcomes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"check\": \"{}\", \"observed\": {}, \"pass\": {}}}{}\n",
            escape(&o.scenario),
            escape(&o.label),
            o.observed.map_or("null".to_string(), format_f64),
            o.pass,
            if i + 1 < s.outcomes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"pass\": {}\n", s.pass));
    out.push_str("}\n");
    out
}

/// Deterministic `summary.csv` rendering (one row per scenario ×
/// metric).
pub fn render_summary_csv(s: &CampaignSummary) -> String {
    let mut out = String::from("scenario,metric,mean,stddev,p99,min,max\n");
    for (name, rows) in &s.stats {
        for m in rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                name,
                m.metric,
                format_f64(m.mean),
                format_f64(m.stddev),
                format_f64(m.p99),
                format_f64(m.min),
                format_f64(m.max)
            ));
        }
    }
    out
}

/// Write `summary.json` + `summary.csv` under
/// `<out_dir>/campaign_<name>/`; returns the summary.json path.
pub fn write_outputs(s: &CampaignSummary, out_dir: &Path) -> std::io::Result<PathBuf> {
    let dir = out_dir.join(format!("campaign_{}", s.name));
    std::fs::create_dir_all(&dir)?;
    let json_path = dir.join("summary.json");
    std::fs::write(&json_path, render_summary_json(s))?;
    std::fs::write(dir.join("summary.csv"), render_summary_csv(s))?;
    Ok(json_path)
}

/// Print the gate outcomes as an aligned report.
pub fn print_outcomes(s: &CampaignSummary) {
    println!(
        "campaign {} — {} seeds × {} scenarios",
        s.name,
        s.seeds.len(),
        s.stats.len()
    );
    for o in &s.outcomes {
        println!(
            "  [{}] {:24} {:40} observed {}",
            if o.pass { "PASS" } else { "FAIL" },
            o.scenario,
            o.label,
            o.observed.map_or("-".to_string(), format_f64)
        );
    }
    println!("  gate: {}", if s.pass { "PASS" } else { "FAIL" });
}

/// The checked-in quick campaign spec (CI's `campaign-smoke`).
pub fn quick_spec_path() -> PathBuf {
    crate::results_dir()
        .parent()
        .map(|root| root.join("scenarios").join("campaign_quick.json"))
        .unwrap_or_else(|| PathBuf::from("scenarios/campaign_quick.json"))
}

/// `repro campaign`: run the checked-in quick campaign, write the
/// summary artifacts, print the gate report. Returns the gate verdict.
pub fn all(threads: Option<usize>) -> bool {
    let path = quick_spec_path();
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("campaign: cannot read {}: {e}", path.display());
            return false;
        }
    };
    let spec = match CampaignSpec::from_json_str(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("campaign: {e}");
            return false;
        }
    };
    let summary = run_campaign(&spec, threads);
    print_outcomes(&summary);
    match write_outputs(&summary, &crate::results_dir()) {
        Ok(p) => println!("  [saved {}]", p.display()),
        Err(e) => eprintln!("  [could not save summary: {e}]"),
    }
    summary.pass
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(extra: &str) -> String {
        format!(
            r#"{{
              "name": "t", "seeds": [1, 2],
              "scenarios": [{{"name": "p", "traffic": {{"model": "poisson"}}}}]
              {extra}
            }}"#
        )
    }

    #[test]
    fn parses_a_minimal_spec() {
        let spec = CampaignSpec::from_json_str(&minimal("")).unwrap();
        assert_eq!(spec.seeds, vec![1, 2]);
        assert_eq!(spec.scenarios.len(), 1);
        assert!(spec.expectations.is_empty());
    }

    #[test]
    fn unknown_spec_key_is_a_typed_error() {
        let src = r#"{"name": "t", "seeds": [1], "scenariosz": []}"#;
        match CampaignSpec::from_json_str(src) {
            Err(CampaignError::UnknownKey { ctx, key }) => {
                assert_eq!(ctx, "");
                assert_eq!(key, "scenariosz");
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
    }

    #[test]
    fn unknown_expectation_key_is_a_typed_error() {
        let src = minimal(
            r#", "expectations": [{"scenario": "p", "check": "exactly_once", "tolerance": 2}]"#,
        );
        match CampaignSpec::from_json_str(&src) {
            Err(CampaignError::UnknownKey { ctx, key }) => {
                assert_eq!(ctx, "expectations[0]");
                assert_eq!(key, "tolerance");
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
    }

    #[test]
    fn unknown_check_name_is_a_typed_error() {
        let src = minimal(r#", "expectations": [{"scenario": "p", "check": "at_most_once"}]"#);
        match CampaignSpec::from_json_str(&src) {
            Err(CampaignError::Parse(msg)) => assert!(msg.contains("unknown check"), "{msg}"),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn nan_bound_is_a_typed_error() {
        // The mini JSON parser has no NaN literal; an overflowing
        // exponent parses to infinity, which is the same non-finite
        // poison a bound must reject.
        let src = minimal(
            r#", "expectations": [{"scenario": "p", "check": "completion_floor", "min": 1e999}]"#,
        );
        match CampaignSpec::from_json_str(&src) {
            Err(CampaignError::NanBound { ctx }) => assert_eq!(ctx, "expectations[0]"),
            other => panic!("expected NanBound, got {other:?}"),
        }
    }

    #[test]
    fn empty_grid_is_a_typed_error() {
        for src in [
            r#"{"name": "t", "seeds": [], "scenarios": [{"name": "p", "traffic": {"model": "poisson"}}]}"#,
            r#"{"name": "t", "seeds": [1], "scenarios": []}"#,
            r#"{"name": "t"}"#,
        ] {
            assert_eq!(
                CampaignSpec::from_json_str(src),
                Err(CampaignError::EmptyGrid),
                "{src}"
            );
        }
    }

    #[test]
    fn duplicate_seed_is_a_typed_error() {
        let src = r#"{"name": "t", "seeds": [1, 2, 1],
                      "scenarios": [{"name": "p", "traffic": {"model": "poisson"}}]}"#;
        assert_eq!(
            CampaignSpec::from_json_str(src),
            Err(CampaignError::DuplicateSeed(1))
        );
    }

    #[test]
    fn expectation_must_reference_a_known_scenario() {
        let src = minimal(r#", "expectations": [{"scenario": "ghost", "check": "exactly_once"}]"#);
        match CampaignSpec::from_json_str(&src) {
            Err(CampaignError::Parse(msg)) => assert!(msg.contains("ghost"), "{msg}"),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn metric_expectation_needs_a_bound_and_known_stat() {
        let src = minimal(r#", "expectations": [{"scenario": "p", "metric": "ls.p9999_us"}]"#);
        assert!(matches!(
            CampaignSpec::from_json_str(&src),
            Err(CampaignError::Parse(_))
        ));
        let src = minimal(
            r#", "expectations": [{"scenario": "p", "metric": "ls.p9999_us", "stat": "p50", "max": 1}]"#,
        );
        match CampaignSpec::from_json_str(&src) {
            Err(CampaignError::Parse(msg)) => assert!(msg.contains("unknown stat"), "{msg}"),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn cross_seed_stats_are_nearest_rank() {
        let vals = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&vals, 0.99), 3.0);
        assert_eq!(percentile(&vals, 0.5), 2.0);
        assert!((mean(&vals) - 2.0).abs() < 1e-12);
        assert!((stddev(&vals) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }
}
