//! # experiments — regenerate every table and figure of the paper
//!
//! Each module reproduces one artifact of the evaluation section (§V):
//!
//! | Module     | Paper artifact                                        |
//! |------------|-------------------------------------------------------|
//! | [`table1`] | Table I — experiment configuration                    |
//! | [`fig6`]   | Fig. 6(a–c) — window sizes, network speeds, completion counts |
//! | [`fig7`]   | Fig. 7(a–f) — LS:TC ratio sweeps, throughput + tail latency |
//! | [`fig8`]   | Fig. 8(a–f) — scale-out patterns 1 and 2              |
//! | [`fig9`]   | Fig. 9(a–d) — h5bench application-level scaling       |
//! | [`ablate`] | DESIGN.md §6 — design-choice ablations                |
//! | [`iosize`] | extension: I/O size × access pattern sensitivity      |
//! | [`openloop`] | extension: open-loop latency vs offered load        |
//! | [`transport`] | extension: TCP vs RDMA transport comparison        |
//! | [`breakdown`] | extension: target-side latency phase breakdown     |
//! | [`observe`] | extension: unified metrics snapshot, SPDK vs oPF     |
//! | [`chaos`]  | extension: fault injection — loss × window degradation |
//! | [`scale`]  | extension: tenants × shards on the multi-reactor target |
//! | [`adversary`] | extension: adversarial tenant vs the hardened protocol plane |
//! | [`cluster`] | extension: multi-target cluster — placement, manager, migration |
//! | [`campaign`] | extension: seeds × traffic-model grids with expectation gates |
//!
//! The `repro` binary drives them; results print as aligned tables and
//! are written as CSV under `results/`.

pub mod ablate;
pub mod adversary;
pub mod breakdown;
pub mod campaign;
pub mod chaos;
pub mod cluster;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod iosize;
pub mod observe;
pub mod openloop;
pub mod scale;
pub mod sweep;
pub mod table1;
pub mod transport;

use std::path::PathBuf;

/// Where CSV results land: `results/` under the workspace root when the
/// binary runs from anywhere inside the workspace, else `./results`.
pub fn results_dir() -> PathBuf {
    // Walk up from the current directory looking for the workspace root
    // (identified by its Cargo.toml + crates/ directory).
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            let r = dir.join("results");
            std::fs::create_dir_all(&r).ok();
            return r;
        }
        if !dir.pop() {
            break;
        }
    }
    let r = PathBuf::from("results");
    std::fs::create_dir_all(&r).ok();
    r
}

/// Write a CSV artifact and report the path on stdout.
pub fn save_csv(name: &str, table: &workload::Table) {
    let path = results_dir().join(format!("{name}.csv"));
    match std::fs::write(&path, workload::csv_table(table)) {
        Ok(()) => println!("  [saved {}]", path.display()),
        Err(e) => eprintln!("  [could not save {}: {e}]", path.display()),
    }
}

/// Experiment durations: full (paper-like 10s runs are unnecessary in a
/// noise-free simulator; 1s of virtual time is converged) vs quick
/// smoke-test settings.
#[derive(Clone, Copy, Debug)]
pub struct Durations {
    /// Warmup seconds (excluded from measurement).
    pub warmup_s: f64,
    /// Measured seconds.
    pub measure_s: f64,
    /// Kernel shard / target reactor count applied to every scenario
    /// (`repro --shards N`). Results are bit-identical for any value
    /// (DESIGN.md §13); the knob exercises the sharded machinery.
    pub shards: usize,
    /// Route cross-shard schedules through the mailbox doorbell mesh
    /// (`repro --parallel`, DESIGN.md §17). Results are bit-identical
    /// with the flag on or off; the knob exercises the parallel-merge
    /// plumbing end to end.
    pub parallel: bool,
}

impl Durations {
    /// Full-fidelity runs.
    pub fn full() -> Self {
        Durations {
            warmup_s: 0.25,
            measure_s: 1.0,
            shards: 1,
            parallel: false,
        }
    }

    /// Quick smoke runs (CI / `--quick`).
    pub fn quick() -> Self {
        Durations {
            warmup_s: 0.05,
            measure_s: 0.15,
            shards: 1,
            parallel: false,
        }
    }

    /// Same durations, different shard count.
    pub fn with_shards(self, shards: usize) -> Self {
        Durations { shards, ..self }
    }

    /// Same durations, mailbox-meshed cross-shard routing on or off.
    pub fn with_parallel(self, parallel: bool) -> Self {
        Durations { parallel, ..self }
    }

    /// Apply to a scenario.
    pub fn apply(&self, sc: &mut workload::Scenario) {
        sc.warmup_s = self.warmup_s;
        sc.measure_s = self.measure_s;
        sc.shards = self.shards;
        sc.parallel = self.parallel;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_apply() {
        let mut sc = workload::Scenario::two_tenant(
            workload::RuntimeKind::Opf,
            fabric::Gbps::G100,
            workload::Mix::READ,
        );
        Durations::quick().apply(&mut sc);
        assert!(sc.measure_s < Durations::full().measure_s);
        assert!(sc.warmup_s > 0.0);
        assert!(!sc.parallel, "meshed routing defaults off");
        Durations::quick().with_parallel(true).apply(&mut sc);
        assert!(sc.parallel);
    }

    #[test]
    fn results_dir_is_writable() {
        let d = results_dir();
        let probe = d.join(".probe");
        std::fs::write(&probe, b"x").expect("results dir writable");
        std::fs::remove_file(&probe).ok();
    }

    #[test]
    fn fig7_covers_the_papers_seven_ratios() {
        assert_eq!(crate::fig7::RATIOS.len(), 7);
        // The paper's list: 1:1, 1:2, 2:2, 3:2, 1:3, 2:3, 1:4.
        assert!(crate::fig7::RATIOS.contains(&(1, 4)));
        assert!(crate::fig7::RATIOS.contains(&(3, 2)));
    }
}
