//! Table I: experiment configuration (hardware presets).

use fabric::{FabricConfig, Gbps};
use nvme::{FlashProfile, Opcode};
use nvmf::CpuCosts;
use workload::Table;

/// Build the Table I equivalent for the simulated testbeds.
pub fn build() -> Table {
    let mut t = Table::new(["", "CC (Chameleon Cloud)", "CL (CloudLab)"]);
    t.row([
        "Processor",
        "AMD EPYC 7352 2.3GHz (costs x2.8/2.3)",
        "AMD EPYC 7543 2.8GHz (baseline costs)",
    ]);
    t.row([
        "Cores",
        "24 (1 reactor/target modelled)",
        "32 (1 reactor/target modelled)",
    ]);
    t.row([
        "RAM",
        "256GB (not a bottleneck)",
        "256GB (not a bottleneck)",
    ]);
    t.row(["NIC", "10/25 Gbps", "100 Gbps"]);
    t.row(["SSD", "3.2 TB NVMe-SSD", "1.6 TB NVMe-SSD"]);

    let cc = FlashProfile::cc_ssd();
    let cl = FlashProfile::cl_ssd();
    t.row([
        "SSD 4K read peak".to_string(),
        format!("{:.0}K IOPS", cc.peak_iops(Opcode::Read) / 1e3),
        format!("{:.0}K IOPS", cl.peak_iops(Opcode::Read) / 1e3),
    ]);
    t.row([
        "SSD 4K write peak".to_string(),
        format!("{:.0}K IOPS", cc.peak_iops(Opcode::Write) / 1e3),
        format!("{:.0}K IOPS", cl.peak_iops(Opcode::Write) / 1e3),
    ]);
    let resp_cc = CpuCosts::cc().resp_path();
    let resp_cl = CpuCosts::cl().resp_path();
    t.row([
        "Reactor resp path".to_string(),
        format!("{resp_cc}"),
        format!("{resp_cl}"),
    ]);
    for speed in Gbps::ALL {
        let cfg = FabricConfig::preset(speed);
        t.row([
            format!("4K wire time @{speed}"),
            format!("{}", cfg.serialization(4096)),
            String::new(),
        ]);
    }
    t
}

/// Print Table I.
pub fn print() {
    println!("== Table I: experiment configuration (simulated testbeds) ==\n");
    let t = build();
    println!("{}", workload::render_table(&t));
    crate::save_csv("table1", &t);
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_builds() {
        let t = super::build();
        assert_eq!(t.headers.len(), 3);
        assert!(t.rows.len() >= 8);
    }
}
