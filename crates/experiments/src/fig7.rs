//! Figure 7: multi-tenant LS:TC ratio sweeps — aggregate TC throughput
//! (a–c) and LS 99.99% tail latency (d–f) for read, mixed and write
//! workloads over 10/25/100 Gbps.

use crate::sweep::run_all;
use crate::Durations;
use fabric::Gbps;
use workload::report::{fmt_iops, fmt_us};
use workload::{Mix, RunResult, RuntimeKind, Scenario, Table};

/// The seven LS:TC ratios of §V-B.
pub const RATIOS: [(usize, usize); 7] = [(1, 1), (1, 2), (2, 2), (3, 2), (1, 3), (2, 3), (1, 4)];

fn scenarios_for(mix: Mix, d: Durations) -> Vec<Scenario> {
    let mut v = Vec::new();
    for speed in Gbps::ALL {
        for runtime in [RuntimeKind::Spdk, RuntimeKind::Opf] {
            for &(ls, tc) in &RATIOS {
                let mut sc = Scenario::ratio(runtime, speed, mix, ls, tc);
                d.apply(&mut sc);
                v.push(sc);
            }
        }
    }
    v
}

fn tables_for(_mix: Mix, results: &[RunResult]) -> (Table, Table) {
    let mut tput = Table::new([
        "LS:TC", "S-10", "PF-10", "S-25", "PF-25", "S-100", "PF-100", "PF/S@10", "PF/S@100",
    ]);
    let mut tail = Table::new(["LS:TC", "S-10", "PF-10", "S-25", "PF-25", "S-100", "PF-100"]);
    // results laid out: speed-major, then runtime, then ratio.
    let idx = |speed_i: usize, runtime_i: usize, ratio_i: usize| {
        speed_i * 2 * RATIOS.len() + runtime_i * RATIOS.len() + ratio_i
    };
    for (ri, &(ls, tc)) in RATIOS.iter().enumerate() {
        let cell = |si: usize, ru: usize| &results[idx(si, ru, ri)];
        let ratio10 = cell(0, 1).tc_iops / cell(0, 0).tc_iops.max(1.0);
        let ratio100 = cell(2, 1).tc_iops / cell(2, 0).tc_iops.max(1.0);
        tput.row([
            format!("{ls}:{tc}"),
            fmt_iops(cell(0, 0).tc_iops),
            fmt_iops(cell(0, 1).tc_iops),
            fmt_iops(cell(1, 0).tc_iops),
            fmt_iops(cell(1, 1).tc_iops),
            fmt_iops(cell(2, 0).tc_iops),
            fmt_iops(cell(2, 1).tc_iops),
            format!("{ratio10:.2}x"),
            format!("{ratio100:.2}x"),
        ]);
        tail.row([
            format!("{ls}:{tc}"),
            fmt_us(cell(0, 0).ls_p9999_us),
            fmt_us(cell(0, 1).ls_p9999_us),
            fmt_us(cell(1, 0).ls_p9999_us),
            fmt_us(cell(1, 1).ls_p9999_us),
            fmt_us(cell(2, 0).ls_p9999_us),
            fmt_us(cell(2, 1).ls_p9999_us),
        ]);
    }
    (tput, tail)
}

/// Run one workload panel of Figure 7 and print both tables.
pub fn panel(mix: Mix, d: Durations, threads: Option<usize>) {
    let scenarios = scenarios_for(mix, d);
    let results = run_all(&scenarios, threads);
    let (tput, tail) = tables_for(mix, &results);
    let tag = match mix.label() {
        "read" => ("a", "d"),
        "write" => ("c", "f"),
        _ => ("b", "e"),
    };
    println!(
        "== Fig 7({}): aggregate TC throughput, {} workload (S=SPDK, PF=NVMe-oPF) ==\n",
        tag.0,
        mix.label()
    );
    println!("{}", workload::render_table(&tput));
    println!(
        "== Fig 7({}): LS 99.99% tail latency, {} workload ==\n",
        tag.1,
        mix.label()
    );
    println!("{}", workload::render_table(&tail));
    crate::save_csv(&format!("fig7{}_throughput", tag.0), &tput);
    crate::save_csv(&format!("fig7{}_tail", tag.1), &tail);
}

/// All of Figure 7.
pub fn all(d: Durations, threads: Option<usize>) {
    for mix in [Mix::READ, Mix::MIXED, Mix::WRITE] {
        panel(mix, d, threads);
    }
}
