//! Figure 9: h5bench application-level scaling.
//!
//! 8 nodes (4 initiator-nodes, 4 target-nodes); each rank hosts one
//! initiator, one LS rank per node, the rest TC.
//!
//! * (a) write / (b) read — scaling pattern 2: 10 ranks per node,
//!   1..4 initiator-nodes;
//! * (c) write / (d) read — scaling pattern 1: 4 nodes, 1..10 ranks per
//!   node.

use crate::Durations;
use h5::bench::{run_h5bench, H5BenchConfig, H5BenchResult, H5Kernel, H5Runtime};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use workload::report::fmt_us;
use workload::Table;

fn particles_for(d: Durations) -> u64 {
    // Map the sweep budget onto dataset volume: full runs move 1M
    // particles (4 MiB) per rank-timestep, quick runs 128K.
    if d.measure_s >= 0.5 {
        1024 * 1024
    } else {
        128 * 1024
    }
}

fn run_points(configs: Vec<H5BenchConfig>, threads: Option<usize>) -> Vec<H5BenchResult> {
    let n = configs.len();
    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
        .clamp(1, n.max(1));
    let results: Mutex<Vec<Option<H5BenchResult>>> = Mutex::new(vec![None; n]);
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = run_h5bench(&configs[i]);
                results.lock().unwrap()[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("filled"))
        .collect()
}

fn panel(kernel: H5Kernel, pattern: u8, d: Durations, threads: Option<usize>) -> Table {
    let particles = particles_for(d);
    let points: Vec<(usize, usize)> = match pattern {
        2 => (1..=4).map(|pairs| (pairs, 10)).collect(),
        _ => (1..=10).map(|per| (4, per)).collect(),
    };
    let mut configs = Vec::new();
    for runtime in [H5Runtime::Spdk, H5Runtime::Opf] {
        for &(pairs, per) in &points {
            let mut c = H5BenchConfig::fig9(runtime, kernel);
            c.pairs = pairs;
            c.ranks_per_node = per;
            c.particles = particles;
            configs.push(c);
        }
    }
    let results = run_points(configs, threads);
    let mut t = Table::new([
        "ranks",
        "S MiB/s",
        "PF MiB/s",
        "PF/S",
        "S avg lat",
        "PF avg lat",
    ]);
    for (i, &(pairs, per)) in points.iter().enumerate() {
        let s = &results[i];
        let o = &results[points.len() + i];
        t.row([
            (pairs * per).to_string(),
            format!("{:.0}", s.bandwidth_mib_s),
            format!("{:.0}", o.bandwidth_mib_s),
            format!("{:.2}x", o.bandwidth_mib_s / s.bandwidth_mib_s.max(1e-9)),
            fmt_us(s.avg_latency_us),
            fmt_us(o.avg_latency_us),
        ]);
    }
    t
}

/// All of Figure 9.
pub fn all(d: Durations, threads: Option<usize>) {
    let panels = [
        (
            H5Kernel::Write,
            2,
            "a",
            "h5bench write, scaling initiator-nodes (10 ranks/node)",
        ),
        (
            H5Kernel::Read,
            2,
            "b",
            "h5bench read, scaling initiator-nodes (10 ranks/node)",
        ),
        (
            H5Kernel::Write,
            1,
            "c",
            "h5bench write, scaling ranks/node (4 nodes)",
        ),
        (
            H5Kernel::Read,
            1,
            "d",
            "h5bench read, scaling ranks/node (4 nodes)",
        ),
    ];
    for (kernel, pattern, tag, desc) in panels {
        println!("== Fig 9({tag}): {desc}, 25 Gbps ==\n");
        let t = panel(kernel, pattern, d, threads);
        println!("{}", workload::render_table(&t));
        crate::save_csv(&format!("fig9{tag}"), &t);
    }
}
