//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--threads N] <artifact>...
//! artifacts: table1 fig6a fig6b fig6c fig7 fig8 fig9 ablate all
//! ```

use experiments::{
    ablate, adversary, breakdown, campaign, chaos, cluster, fig6, fig7, fig8, fig9, iosize,
    observe, openloop, scale, table1, transport, Durations,
};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--threads N] [--shards N] [--targets N] [--parallel] <artifact>...\n\
         artifacts: table1 fig6a fig6b fig6c fig7 fig8 fig9 ablate iosize openloop transport breakdown observe chaos scale adversary campaign all\n\
         campaign runs the checked-in quick campaign (scenarios/campaign_quick.json) and\n\
         exits non-zero if any expectation gate fails\n\
         --shards N runs every scenario on N kernel shards (results are bit-identical for any N)\n\
         --targets N (N > 1) gives `scale` a targets axis (scale_cluster.csv) and reruns\n\
         `adversary` hardened across a live migration (adversary_targetsN.csv)\n\
         --parallel routes cross-shard schedules through the mailbox doorbell mesh\n\
         (DESIGN.md §17); artifacts stay byte-identical to their serial goldens"
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut threads: Option<usize> = None;
    let mut shards: usize = 1;
    let mut targets: usize = 1;
    let mut parallel = false;
    let mut artifacts: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--threads" => {
                let n = args.next().unwrap_or_else(|| usage());
                threads = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--shards" => {
                let n = args.next().unwrap_or_else(|| usage());
                shards = n.parse().unwrap_or_else(|_| usage());
                if shards == 0 {
                    usage();
                }
            }
            "--targets" => {
                let n = args.next().unwrap_or_else(|| usage());
                targets = n.parse().unwrap_or_else(|_| usage());
                if targets == 0 {
                    usage();
                }
            }
            "--parallel" => parallel = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => artifacts.push(other.to_string()),
        }
    }
    if artifacts.is_empty() {
        usage();
    }
    let d = if quick {
        Durations::quick()
    } else {
        Durations::full()
    }
    .with_shards(shards)
    .with_parallel(parallel);

    let start = simkit::Stopwatch::start();
    for artifact in &artifacts {
        match artifact.as_str() {
            "table1" => table1::print(),
            "fig6a" => fig6::fig6a(d, threads),
            "fig6b" => fig6::fig6b(d, threads),
            "fig6c" => fig6::fig6c(d, threads),
            "fig6" => {
                fig6::fig6a(d, threads);
                fig6::fig6b(d, threads);
                fig6::fig6c(d, threads);
            }
            "fig7" => fig7::all(d, threads),
            "fig8" => fig8::all(d, threads),
            "fig9" => fig9::all(d, threads),
            "ablate" => ablate::all(d, threads),
            "iosize" => iosize::all(d, threads),
            "openloop" => openloop::all(d, threads),
            "transport" => transport::all(d, threads),
            "breakdown" => breakdown::all(d, threads),
            "observe" => observe::all(d, threads),
            "chaos" => chaos::all(d, threads),
            "scale" => {
                if targets > 1 {
                    cluster::scale_all(d, threads, quick, targets);
                } else {
                    scale::all(d, threads, quick);
                }
            }
            "adversary" => {
                if targets > 1 {
                    cluster::adversary_all(d, threads, targets);
                } else {
                    adversary::all(d, threads);
                }
            }
            "campaign" => {
                if !campaign::all(threads) {
                    eprintln!("[campaign expectation gate FAILED]");
                    std::process::exit(1);
                }
            }
            "all" => {
                table1::print();
                fig6::fig6a(d, threads);
                fig6::fig6b(d, threads);
                fig6::fig6c(d, threads);
                fig7::all(d, threads);
                fig8::all(d, threads);
                fig9::all(d, threads);
                ablate::all(d, threads);
                iosize::all(d, threads);
                openloop::all(d, threads);
                transport::all(d, threads);
                breakdown::all(d, threads);
                observe::all(d, threads);
            }
            _ => usage(),
        }
    }
    eprintln!("[repro finished in {:.1}s]", start.elapsed_secs());
}
