//! Extension experiment: open-loop latency vs. offered load.
//!
//! The paper's evaluation is closed-loop (fixed queue depth), which
//! cannot show *where* each runtime saturates — only how fast it runs at
//! full pressure. Replaying Poisson arrival traces at increasing rates
//! exposes the classic hockey-stick: mean latency stays near the
//! service floor until the offered load crosses the runtime's capacity,
//! then explodes. NVMe-oPF's knee sits where the device saturates
//! (~265K IOPS for reads) while the SPDK baseline's sits at its
//! reactor's per-request completion ceiling (~180K) — the same gap
//! Figure 7 shows, now visible as headroom instead of throughput.

use crate::Durations;
use simkit::SimDuration;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use workload::report::fmt_us;
use workload::{replay, Mix, ReplayConfig, ReplayResult, RuntimeKind, Table, TraceLog};

/// Run the open-loop sweep and print the table.
pub fn all(d: Durations, threads: Option<usize>) {
    println!("== Extension: open-loop latency vs offered load (4 tenants, read, 100 Gbps) ==\n");
    let rates: Vec<f64> = vec![50e3, 100e3, 150e3, 200e3, 230e3, 260e3, 300e3];
    let dur = SimDuration::from_secs_f64((d.measure_s * 0.4).max(0.04));

    let mut jobs: Vec<(RuntimeKind, f64)> = Vec::new();
    for runtime in [RuntimeKind::Spdk, RuntimeKind::Opf] {
        for &r in &rates {
            jobs.push((runtime, r));
        }
    }
    let results: Mutex<Vec<Option<ReplayResult>>> = Mutex::new(vec![None; jobs.len()]);
    let next = AtomicUsize::new(0);
    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
        .clamp(1, jobs.len());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (runtime, rate) = jobs[i];
                let log = TraceLog::poisson(rate, dur, 4, Mix::READ, 77);
                let r = replay(
                    &log,
                    &ReplayConfig {
                        runtime,
                        ..ReplayConfig::default()
                    },
                );
                results.lock().unwrap()[i] = Some(r);
            });
        }
    });
    let results: Vec<ReplayResult> = results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("filled"))
        .collect();

    let mut t = Table::new([
        "offered IOPS",
        "S mean",
        "S p99",
        "PF mean",
        "PF p99",
        "S/PF mean",
    ]);
    for (i, &rate) in rates.iter().enumerate() {
        let s = &results[i];
        let o = &results[rates.len() + i];
        t.row([
            format!("{:.0}K", rate / 1e3),
            fmt_us(s.mean_us),
            fmt_us(s.p99_us),
            fmt_us(o.mean_us),
            fmt_us(o.p99_us),
            format!("{:.1}x", s.mean_us / o.mean_us.max(1e-9)),
        ]);
    }
    println!("{}", workload::render_table(&t));
    crate::save_csv("openloop", &t);
}
