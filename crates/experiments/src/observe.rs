//! Observability artifact: the unified metrics snapshot, side by side
//! for SPDK vs NVMe-oPF on the canonical 1 LS : 4 TC read scenario.
//!
//! Prints a curated utilization/occupancy summary (the counters the
//! paper's analysis sections reason about) and saves the *complete*
//! snapshots — every counter from every layer — as `observe.csv`.

use crate::sweep::run_all;
use crate::Durations;
use fabric::Gbps;
use simkit::metrics::format_f64;
use workload::{Mix, RuntimeKind, Scenario, Table};

/// Counters surfaced in the printed summary (full set goes to CSV).
const HIGHLIGHTS: [(&str, &str); 10] = [
    ("pair0.tgt_ep.link.uplink_util", "target uplink util"),
    ("pair0.tgt_ep.link.downlink_util", "target downlink util"),
    ("pair0.dev.flash.busy_fraction", "flash busy fraction"),
    ("pair0.dev.cq.out_of_order_completions", "CQ reorder depth"),
    ("reactor_util", "target reactor util"),
    ("pair0.tgt.coalesce_ratio", "coalesce ratio"),
    ("pair0.tgt.ls_bypassed", "LS bypasses"),
    ("pair0.tgt.backpressured_sends", "backpressured sends"),
    ("pair0.tgt.max_tc_queue", "max TC queue depth"),
    ("pair0.tgt.protocol_errors", "protocol errors"),
];

/// The two scenarios compared (SPDK vs NVMe-oPF on 1 LS : 4 TC read).
/// Shared with the hot-path benchmark and the differential test.
pub fn scenarios(d: Durations) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for runtime in [RuntimeKind::Spdk, RuntimeKind::Opf] {
        let mut sc = Scenario::ratio(runtime, Gbps::G100, Mix::READ, 1, 4);
        d.apply(&mut sc);
        scenarios.push(sc);
    }
    scenarios
}

/// The full snapshot dump (union of metric names) from the results of
/// [`scenarios`], in order — the table saved as `observe.csv`.
pub fn full_table(results: &[workload::RunResult]) -> Table {
    let (spdk, opf) = (&results[0].metrics, &results[1].metrics);
    // Full dump: union of metric names (each snapshot is name-sorted,
    // so a simple merge keeps the output deterministic).
    let mut full = Table::new(["metric", "spdk", "opf"]);
    let mut names: Vec<&str> = spdk
        .iter()
        .map(|(n, _)| n)
        .chain(opf.iter().map(|(n, _)| n))
        .collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let cell = |m: &simkit::Metrics| m.get(name).map_or("-".to_string(), format_f64);
        full.row([name.to_string(), cell(spdk), cell(opf)]);
    }
    full
}

/// Run the observability comparison and emit summary + full CSV.
pub fn all(d: Durations, threads: Option<usize>) {
    println!("== Observability: unified metrics snapshot (1 LS : 4 TC, 100 Gbps, read) ==\n");
    let results = run_all(&scenarios(d), threads);
    let (spdk, opf) = (&results[0].metrics, &results[1].metrics);

    let mut t = Table::new(["counter", "SPDK", "NVMe-oPF"]);
    for (name, label) in HIGHLIGHTS {
        let fmt = |m: &simkit::Metrics| match m.get(name) {
            Some(v) => format!("{v:.4}"),
            None => "-".to_string(),
        };
        t.row([label.to_string(), fmt(spdk), fmt(opf)]);
    }
    println!("{}", workload::render_table(&t));

    crate::save_csv("observe", &full_table(&results));
}
