//! `repro scale --targets N` / `repro adversary --targets N` — the
//! multi-target cluster plane (DESIGN.md §16).
//!
//! Two artifacts:
//!
//! 1. **`scale_cluster.csv`** — the scale sweep gains a targets axis:
//!    tenants × shards × targets, all-TC equal-weight closed loops with
//!    round-robin placement behind the leaf/spine fabric. Three
//!    contracts per row, the cluster analogues of `repro scale`:
//!    - **Cluster-wide fairness** — per-tenant completion spread across
//!      *all* targets stays ≤ 5% of the mean: placement plus the
//!      cluster priority manager keep tenants on different targets
//!      within the same bound a single target honors.
//!    - **Shard invariance** — result columns are identical across
//!      shard counts for a given (tenants, targets) point; the lane
//!      merge stays pure bookkeeping in cluster mode too.
//!    - **Cluster engagement** — multi-target rows show spine links
//!      profiled and manager ticks firing, so the bound above is a
//!      property of the cluster plane, not of it never engaging.
//!
//! 2. **`adversary_targets{N}.csv`** — the adversary grid's hardened
//!    rows rerun on a 2-target cluster with a live migration of the
//!    spoof victim scheduled mid-measurement, so every attack spans the
//!    move: the victim drains off its home target, its CID queue is
//!    frozen and adopted by the destination, and the epoch-bumped
//!    re-drive lands while the adversary keeps firing. Honest-tenant
//!    fairness and exactly-once completion are asserted on every row,
//!    plus migration completion itself (`done == moves`, none failed).

use crate::adversary::{attacks, honest_strays, honest_tc, profile, SPOOF_VICTIM};
use crate::sweep::run_all;
use crate::Durations;
use fabric::Gbps;
use workload::scenario::WindowSpec;
use workload::{Mix, PlacementSpec, RunResult, RuntimeKind, Scenario, Table};

/// Shard counts swept at every (tenants, targets) point. Shorter than
/// `repro scale`'s list — the targets axis multiplies the grid.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Tenant counts for the cluster sweep. Cluster mode replaces the pairs
/// axis with the targets axis, so every tenant count must fit one
/// node's CID-queue key space (< 64 owners).
pub fn tenant_counts(quick: bool) -> &'static [usize] {
    if quick {
        &[4, 16]
    } else {
        &[4, 16, 32]
    }
}

/// The targets axis for `--targets N`: powers of two from 1 up to and
/// including `max` (1 anchors each point on the classic single-target
/// path).
pub fn target_counts(max: usize) -> Vec<usize> {
    let mut v = vec![1];
    let mut t = 2;
    while t <= max {
        v.push(t);
        t *= 2;
    }
    v
}

/// One cluster scale point: `tenants` equal-weight TC tenants placed
/// round-robin over `targets` targets, `shards` kernel lanes.
pub fn scenario(tenants: usize, shards: usize, targets: usize, d: Durations) -> Scenario {
    let mut sc = Scenario::two_tenant(RuntimeKind::Opf, Gbps::G100, Mix::READ);
    sc.pairs = 1;
    sc.ls_per_node = 0;
    sc.tc_per_node = tenants;
    sc.tc_qd = 32;
    sc.targets = targets;
    sc.placement = PlacementSpec::RoundRobin;
    d.apply(&mut sc);
    sc.shards = shards;
    sc
}

/// The full sweep in row order: tenant-major, target-mid, shard-minor.
pub fn scenarios(d: Durations, quick: bool, max_targets: usize) -> Vec<Scenario> {
    let mut v = Vec::new();
    for &tenants in tenant_counts(quick) {
        for &targets in &target_counts(max_targets) {
            for &shards in &SHARD_COUNTS {
                v.push(scenario(tenants, shards, targets, d));
            }
        }
    }
    v
}

/// Per-tenant completion counts across the whole cluster.
fn per_tenant_completed(r: &RunResult, tenants: usize) -> Vec<u64> {
    (0..tenants)
        .map(|i| {
            r.metrics
                .get(&format!("ini{i}.completed"))
                .unwrap_or_else(|| panic!("ini{i}.completed missing from snapshot"))
                as u64
        })
        .collect()
}

/// Build the results table from [`scenarios`]-ordered results, asserting
/// cluster-wide fairness, shard invariance and cluster engagement.
pub fn scale_table(results: &[RunResult], quick: bool, max_targets: usize) -> Table {
    let mut t = Table::new([
        "tenants",
        "shards",
        "targets",
        "tc_kiops",
        "fair_spread_pct",
        "tenant_min",
        "tenant_max",
        "links_profiled",
        "mgr_ticks",
        "weight_updates",
    ]);
    let mut idx = 0;
    for &tenants in tenant_counts(quick) {
        for &targets in &target_counts(max_targets) {
            // Result columns of the shards=1 row: the reference every
            // other shard count must reproduce exactly.
            let mut reference: Option<Vec<String>> = None;
            for &shards in &SHARD_COUNTS {
                let r = &results[idx];
                idx += 1;
                let per = per_tenant_completed(r, tenants);
                let min = per.iter().copied().min().unwrap_or(0);
                let max = per.iter().copied().max().unwrap_or(0);
                let mean = per.iter().sum::<u64>() as f64 / per.len().max(1) as f64;
                let spread = (max - min) as f64 / mean * 100.0;
                assert!(
                    spread <= 5.0,
                    "{tenants} tenants / {targets} targets / {shards} shards: \
                     cluster-wide completion spread {spread:.2}% exceeds the 5% \
                     fairness bound"
                );
                let m = &r.metrics;
                let links = m.get("cluster.links_profiled").unwrap_or(0.0);
                let ticks = m.get("cluster.mgr_ticks").unwrap_or(0.0);
                let weight_updates = m.get("cluster.weight_updates").unwrap_or(0.0);
                if targets > 1 {
                    assert_eq!(
                        m.get("cluster.targets"),
                        Some(targets as f64),
                        "{tenants} tenants / {targets} targets: wrong target count"
                    );
                    assert!(
                        links > 0.0,
                        "{tenants} tenants / {targets} targets: no spine links \
                         profiled — the switched topology never engaged"
                    );
                    assert!(
                        ticks > 0.0,
                        "{tenants} tenants / {targets} targets: the cluster \
                         priority manager never ticked"
                    );
                    assert_eq!(
                        m.get("recovery.offered"),
                        m.get("recovery.goodput"),
                        "{tenants} tenants / {targets} targets / {shards} shards: \
                         cluster closed loops must complete exactly once"
                    );
                }
                let result_cols = vec![
                    format!("{:.1}", r.tc_iops / 1e3),
                    format!("{spread:.3}"),
                    format!("{min}"),
                    format!("{max}"),
                ];
                match &reference {
                    None => reference = Some(result_cols.clone()),
                    Some(b) => assert_eq!(
                        b, &result_cols,
                        "{tenants} tenants / {targets} targets: results differ \
                         between 1 and {shards} shards"
                    ),
                }
                t.row([
                    format!("{tenants}"),
                    format!("{shards}"),
                    format!("{targets}"),
                    result_cols[0].clone(),
                    result_cols[1].clone(),
                    result_cols[2].clone(),
                    result_cols[3].clone(),
                    format!("{links:.0}"),
                    format!("{ticks:.0}"),
                    format!("{weight_updates:.0}"),
                ]);
            }
        }
    }
    t
}

/// Run the cluster scale sweep, assert its contracts, and save
/// `scale_cluster.csv`.
pub fn scale_all(d: Durations, threads: Option<usize>, quick: bool, max_targets: usize) {
    println!("== Scale: tenants × shards × targets on the cluster plane ==\n");
    let results = run_all(&scenarios(d, quick, max_targets), threads);
    let t = scale_table(&results, quick, max_targets);
    println!("{}", workload::render_table(&t));
    crate::save_csv("scale_cluster", &t);
}

/// The adversary-under-migration grid: every attack profile, hardened,
/// on a `targets`-target cluster, with the spoof victim migrating off
/// its round-robin home mid-measurement.
pub fn adversary_scenarios(d: Durations, targets: usize) -> Vec<Scenario> {
    assert!(
        targets > 1,
        "the adversary smoke needs a multi-target cluster"
    );
    let victim = SPOOF_VICTIM as usize;
    let home = victim % targets;
    let moves = vec![workload::MigrationSpec {
        tenant: victim,
        at_s: d.measure_s * 0.5,
        to_target: (home + 1) % targets,
    }];
    let mut v = Vec::new();
    for attack in &attacks() {
        let mut sc = Scenario::ratio(
            RuntimeKind::Opf,
            Gbps::G100,
            Mix::READ,
            crate::adversary::LS_TENANTS,
            crate::adversary::TC_TENANTS,
        );
        sc.window = WindowSpec::Static(64);
        sc.faults = Some(profile(attack, true));
        d.apply(&mut sc);
        sc.targets = targets;
        sc.placement = PlacementSpec::RoundRobin;
        sc.migrations = moves.clone();
        v.push(sc);
    }
    v
}

/// Worst per-tenant completion spread among honest TC tenants that
/// share a target — the cluster analogue of the single-target fairness
/// bound. Cluster-*wide* spread is dominated by placement asymmetry (a
/// target hosting two TC tenants serves each more than one hosting
/// three — device physics, not scheduling bias), so fairness is judged
/// where a scheduler actually arbitrates: per co-resident group. The
/// migrating victim splits its residency across the move and belongs to
/// neither group; exactly-once accounting covers it instead.
fn coresident_spread_pct(r: &RunResult, targets: usize, migrating: usize) -> f64 {
    let mut worst: f64 = 0.0;
    for t in 0..targets {
        // Round-robin homes: slot % targets.
        let per: Vec<f64> = honest_tc()
            .filter(|&i| i != migrating && i % targets == t)
            .map(|i| {
                r.metrics
                    .get(&format!("ini{i}.completed"))
                    .unwrap_or_else(|| panic!("ini{i}.completed missing from snapshot"))
            })
            .collect();
        if per.len() < 2 {
            continue;
        }
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        let min = per.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per.iter().copied().fold(0.0, f64::max);
        worst = worst.max((max - min) / mean * 100.0);
    }
    worst
}

/// Render the adversary-under-migration table, asserting the hardened
/// honest-tenant bounds plus migration completion on every row.
pub fn adversary_table(results: &[RunResult], targets: usize) -> Table {
    let mut t = Table::new([
        "attack",
        "targets",
        "tc_kiops",
        "ls_p9999_us",
        "spread_pct",
        "honest_strays",
        "adv_attacks",
        "migrations_done",
        "cmds_moved",
        "redriven",
    ]);
    // LS-tail bound relative to the attack-free row, exactly as in the
    // single-target grid.
    let ls_tail_bound = results[0].ls_p9999_us * 5.0;
    for (attack, r) in attacks().iter().zip(results) {
        let m = &r.metrics;
        let spread = coresident_spread_pct(r, targets, SPOOF_VICTIM as usize);
        let strays = honest_strays(r);
        let adv_attacks = [
            "forged_ls",
            "forged_invalid",
            "drain_floods",
            "replays",
            "spoofs",
        ]
        .iter()
        .map(|k| m.get(&format!("faults.adv_{k}")).unwrap_or(0.0))
        .sum::<f64>();
        let done = m.get("cluster.migrations_done").unwrap_or(0.0);
        let failed = m.get("cluster.migrations_failed").unwrap_or(0.0);
        let cmds_moved = m.get("cluster.cmds_moved").unwrap_or(0.0);
        let redriven = m.get("cluster.redriven").unwrap_or(0.0);

        assert!(
            spread <= 5.0,
            "{}: honest-tenant spread {spread:.2}% exceeds the 5% fairness \
             bound across a migration",
            attack.name
        );
        assert_eq!(
            strays, 0.0,
            "{}: lost/duplicated honest commands across a migration",
            attack.name
        );
        assert!(
            r.ls_p9999_us <= ls_tail_bound,
            "{}: LS p99.99 {:.1}us exceeds 5x the attack-free baseline \
             ({ls_tail_bound:.1}us)",
            attack.name,
            r.ls_p9999_us
        );
        assert_eq!(
            (done, failed),
            (1.0, 0.0),
            "{}: the mid-attack migration did not complete",
            attack.name
        );
        if attack.name != "none" {
            assert!(
                adv_attacks > 0.0,
                "{}: adversary never fired — the row proves nothing",
                attack.name
            );
        }

        t.row([
            attack.name.to_string(),
            format!("{targets}"),
            format!("{:.1}", r.tc_iops / 1e3),
            format!("{:.1}", r.ls_p9999_us),
            format!("{spread:.3}"),
            format!("{strays:.0}"),
            format!("{adv_attacks:.0}"),
            format!("{done:.0}"),
            format!("{cmds_moved:.0}"),
            format!("{redriven:.0}"),
        ]);
    }
    t
}

/// Run the adversary-under-migration smoke and save
/// `adversary_targets{N}.csv`.
pub fn adversary_all(d: Durations, threads: Option<usize>, targets: usize) {
    println!(
        "== Adversary x migration: hardened attack grid on a {targets}-target \
         cluster, NVMe-oPF 1 LS : 5 TC read, 100 Gbps ==\n"
    );
    let results = run_all(&adversary_scenarios(d, targets), threads);
    let t = adversary_table(&results, targets);
    println!("{}", workload::render_table(&t));
    crate::save_csv(&format!("adversary_targets{targets}"), &t);
}
