//! `repro scale` — hundred-tenant scale-out on the sharded
//! multi-reactor target.
//!
//! Sweeps tenant counts 4 → 256 (quick preset: ≤ 32) against shard
//! counts 1/2/4/8 on all-TC, equal-weight workloads. Three contracts are
//! asserted on every run, not just eyeballed:
//!
//! 1. **Shard invariance** — every result column is identical across
//!    shard counts for a given tenant count: DESIGN.md §13's determinism
//!    contract exercised end to end, up to 256 tenants over 8 shards.
//! 2. **Routing engagement** — with more than one shard, the cross-shard
//!    bookkeeping columns are nonzero, so the invariance above is a
//!    property of the merge, not of the sharding never happening.
//! 3. **Fairness** — per-tenant completion spread at equal weights stays
//!    within 5% of the mean as tenancy grows.
//!
//! The bookkeeping columns (`xshard_events`, `xreactor_submits`) are the
//! only ones allowed to vary with the shard count; they come from
//! [`workload::RunResult`]'s side-band counters, never from the metric
//! snapshot, which stays bit-identical by construction.

use crate::sweep::run_all;
use crate::Durations;
use fabric::Gbps;
use workload::{Mix, RunResult, RuntimeKind, Scenario, Table};

/// Shard counts swept at every tenant count.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Tenants per initiator/target pair. The shared-queue key encoding
/// bounds owners to 64 per target (`core::target::encode_key`); 32
/// leaves headroom and matches the paper's per-node tenant densities.
pub const TENANTS_PER_PAIR: usize = 32;

/// Tenant counts for the sweep. Quick runs stop at 32 tenants (the CI
/// scale-smoke budget); full runs reach 256 tenants across 8 pairs.
pub fn tenant_counts(quick: bool) -> &'static [usize] {
    if quick {
        &[4, 16, 32]
    } else {
        &[4, 16, 64, 256]
    }
}

/// One scale scenario: `tenants` equal-weight TC tenants spread over
/// `ceil(tenants / 32)` pairs, `shards` kernel lanes.
pub fn scenario(tenants: usize, shards: usize, d: Durations) -> Scenario {
    let pairs = tenants.div_ceil(TENANTS_PER_PAIR);
    debug_assert_eq!(tenants % pairs, 0, "tenant counts divide evenly");
    let mut sc = Scenario::two_tenant(RuntimeKind::Opf, Gbps::G100, Mix::READ);
    sc.pairs = pairs;
    sc.ls_per_node = 0;
    sc.tc_per_node = tenants / pairs;
    // Moderate depth: the sweep studies tenancy, not queue pressure, and
    // 256 tenants × 32 stays well inside every per-tenant queue bound.
    sc.tc_qd = 32;
    d.apply(&mut sc);
    sc.shards = shards;
    sc
}

/// The full sweep in row order: tenant-major, shard-minor.
pub fn scenarios(d: Durations, quick: bool) -> Vec<Scenario> {
    let mut v = Vec::new();
    for &tenants in tenant_counts(quick) {
        for &shards in &SHARD_COUNTS {
            v.push(scenario(tenants, shards, d));
        }
    }
    v
}

/// Per-tenant completion counts from the unified snapshot.
fn per_tenant_completed(r: &RunResult, tenants: usize) -> Vec<u64> {
    (0..tenants)
        .map(|i| {
            r.metrics
                .get(&format!("ini{i}.completed"))
                .unwrap_or_else(|| panic!("ini{i}.completed missing from snapshot"))
                as u64
        })
        .collect()
}

/// Build the results table from [`scenarios`]-ordered results, asserting
/// shard invariance, routing engagement and the 5% fairness bound.
pub fn table(results: &[RunResult], quick: bool) -> Table {
    let mut t = Table::new([
        "tenants",
        "shards",
        "pairs",
        "tc_kiops",
        "fair_spread_pct",
        "tenant_min",
        "tenant_max",
        "xshard_events",
        "xreactor_submits",
    ]);
    let mut idx = 0;
    for &tenants in tenant_counts(quick) {
        // Result columns of the shards=1 row: the reference every other
        // shard count must reproduce exactly.
        let mut reference: Option<Vec<String>> = None;
        for &shards in &SHARD_COUNTS {
            let r = &results[idx];
            idx += 1;
            let per = per_tenant_completed(r, tenants);
            let min = per.iter().copied().min().unwrap_or(0);
            let max = per.iter().copied().max().unwrap_or(0);
            let mean = per.iter().sum::<u64>() as f64 / per.len().max(1) as f64;
            let spread = (max - min) as f64 / mean * 100.0;
            assert!(
                spread <= 5.0,
                "{tenants} tenants / {shards} shards: per-tenant completion \
                 spread {spread:.2}% exceeds the 5% fairness bound"
            );
            let pairs = tenants.div_ceil(TENANTS_PER_PAIR);
            let result_cols = vec![
                format!("{tenants}"),
                format!("{pairs}"),
                format!("{:.1}", r.tc_iops / 1e3),
                format!("{spread:.3}"),
                format!("{min}"),
                format!("{max}"),
            ];
            match &reference {
                None => reference = Some(result_cols.clone()),
                Some(b) => assert_eq!(
                    b, &result_cols,
                    "{tenants} tenants: results differ between 1 and {shards} shards"
                ),
            }
            if shards > 1 && tenants > 1 {
                assert!(
                    r.cross_shard_events > 0,
                    "{tenants} tenants / {shards} shards: no cross-shard events \
                     — the sharded routing never engaged"
                );
                assert!(
                    r.cross_reactor_submits > 0,
                    "{tenants} tenants / {shards} shards: no mailbox crossings \
                     — every tenant landed on the owner reactor"
                );
            } else if shards == 1 {
                assert_eq!(r.cross_shard_events, 0, "single shard cannot cross lanes");
                assert_eq!(r.cross_reactor_submits, 0, "single reactor cannot cross");
            }
            t.row([
                result_cols[0].clone(),
                format!("{shards}"),
                result_cols[1].clone(),
                result_cols[2].clone(),
                result_cols[3].clone(),
                result_cols[4].clone(),
                result_cols[5].clone(),
                format!("{}", r.cross_shard_events),
                format!("{}", r.cross_reactor_submits),
            ]);
        }
    }
    t
}

/// Run the scale sweep, assert its contracts, and save `scale.csv`.
pub fn all(d: Durations, threads: Option<usize>, quick: bool) {
    println!("== Scale: tenants × shards on the multi-reactor target ==\n");
    let results = run_all(&scenarios(d, quick), threads);
    let t = table(&results, quick);
    println!("{}", workload::render_table(&t));
    crate::save_csv("scale", &t);
}
