//! Extension experiment: per-phase latency breakdown.
//!
//! Figure 3 of the paper sketches where time goes for LS and TC requests
//! under each runtime; this experiment measures it. The targets emit
//! trace events at command receipt, device submit, device completion and
//! response transmit; pairing consecutive events per (initiator, CID)
//! splits a request's target-side residence into:
//!
//! * **staging** — command receipt → device submit (the PM's TC queue
//!   wait under NVMe-oPF, ~reactor parse time under SPDK);
//! * **device** — flash unit queueing + media service;
//! * **completion** — device completion → response on the wire (per
//!   request under SPDK; per batch and drain-ordered under NVMe-oPF).

use crate::Durations;
use nvme::Opcode;
use opf::ReqClass;
use simkit::{Kernel, SimTime, Tracer};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use workload::report::fmt_us;
use workload::{build_pair_traced, Pair, RuntimeKind, Table};

/// Mean gaps (µs) between target-side phases.
#[derive(Debug, Default, Clone, Copy)]
struct Phases {
    staging_us: f64,
    device_us: f64,
    completion_us: f64,
    samples: u64,
}

fn drive(runtime: RuntimeKind, d: Durations) -> Phases {
    let mut k = Kernel::new(31);
    let (sink, tracer) = Tracer::recording();
    let pair = Rc::new(build_pair_traced(
        &mut k,
        runtime,
        workload::scenario::Speed::G100,
        5,
        128,
        opf::WindowPolicy::Static(32),
        31,
        true,
        tracer,
    ));
    // Tenant 0 is the LS probe (QD 1 semantics by just keeping one
    // in flight); tenants 1..5 run TC closed loops.
    fn pump(pair: Rc<Pair>, k: &mut Kernel, tenant: usize, class: ReqClass, n: u64, end: SimTime) {
        if k.now() >= end {
            return;
        }
        let p2 = pair.clone();
        pair.initiators[tenant].submit(
            k,
            class,
            Opcode::Read,
            n % 4096,
            1,
            None,
            Box::new(move |k, _| pump(p2, k, tenant, class, n + 1, end)),
        );
    }
    let end = SimTime::from_nanos(((d.warmup_s + d.measure_s) * 1e9) as u64);
    for tenant in 1..5 {
        for q in 0..128u64 {
            pump(
                pair.clone(),
                &mut k,
                tenant,
                ReqClass::ThroughputCritical,
                q,
                end,
            );
        }
    }
    pump(pair.clone(), &mut k, 0, ReqClass::LatencySensitive, 0, end);
    k.set_horizon(end);
    k.run_to_completion();

    // Pair events per (who, cid): cmd_rx -> dev_submit -> dev_done.
    let mut last_rx: HashMap<(u32, u64), SimTime> = HashMap::new();
    let mut last_submit: HashMap<(u32, u64), SimTime> = HashMap::new();
    let mut last_done: HashMap<(u32, u64), SimTime> = HashMap::new();
    let mut phases = Phases::default();
    let mut completion_sum = 0.0f64;
    let mut completion_n = 0u64;
    let warm = SimTime::from_nanos((d.warmup_s * 1e9) as u64);
    for ev in &sink.borrow().events {
        let key = (ev.who, ev.detail);
        match ev.kind {
            "tgt.cmd_rx" | "opf.cmd_rx" => {
                last_rx.insert(key, ev.at);
            }
            "tgt.dev_submit" | "opf.dev_submit" => {
                if let Some(rx) = last_rx.remove(&key) {
                    if ev.at >= warm {
                        phases.staging_us += ev.at.since(rx).as_micros_f64();
                        phases.samples += 1;
                    }
                }
                last_submit.insert(key, ev.at);
            }
            "tgt.dev_done" | "opf.dev_done" => {
                if let Some(sub) = last_submit.remove(&key) {
                    if ev.at >= warm {
                        phases.device_us += ev.at.since(sub).as_micros_f64();
                    }
                }
                last_done.insert(key, ev.at);
            }
            "tgt.resp_tx" | "opf.coalesced_tx" | "opf.ls_resp_tx" => {
                if let Some(done) = last_done.remove(&key) {
                    if ev.at >= warm {
                        completion_sum += ev.at.since(done).as_micros_f64();
                        completion_n += 1;
                    }
                }
            }
            _ => {}
        }
    }
    let n = phases.samples.max(1) as f64;
    Phases {
        staging_us: phases.staging_us / n,
        device_us: phases.device_us / n,
        completion_us: completion_sum / completion_n.max(1) as f64,
        samples: phases.samples,
    }
}

/// Run the breakdown for both runtimes and print the comparison.
pub fn all(d: Durations, _threads: Option<usize>) {
    println!("== Extension: target-side latency breakdown (1 LS : 4 TC, read, 100 Gbps) ==\n");
    let results: Rc<RefCell<Vec<(RuntimeKind, Phases)>>> = Rc::new(RefCell::new(Vec::new()));
    for runtime in [RuntimeKind::Spdk, RuntimeKind::Opf] {
        let p = drive(runtime, d);
        results.borrow_mut().push((runtime, p));
    }
    let mut t = Table::new([
        "runtime",
        "staging (PM queue)",
        "device",
        "resp path (per resp)",
        "samples",
    ]);
    for (runtime, p) in results.borrow().iter() {
        t.row([
            runtime.label().to_string(),
            fmt_us(p.staging_us),
            fmt_us(p.device_us),
            fmt_us(p.completion_us),
            p.samples.to_string(),
        ]);
    }
    println!("{}", workload::render_table(&t));
    println!(
        "NVMe-oPF trades staging time (TC requests wait in the per-tenant\n\
         PM queue for their drain) for a bounded device queue and a\n\
         per-batch response path; SPDK submits immediately but every\n\
         request then queues at the device and pays its own response.\n"
    );
    crate::save_csv("breakdown", &t);
}
