//! `repro adversary` — priority-protocol hardening under an
//! adversarial tenant (DESIGN.md §14).
//!
//! One tenant of the canonical 1 LS : 5 TC read scenario turns
//! adversarial: the seeded [`faults::Adversary`] interposes on its PDU
//! stream and forges LS flags, emits invalid flag combinations, floods
//! drain PDUs, replays stashed capsules across recovery epochs, or
//! spoofs the SQE initiator byte of an honest victim. Every attack
//! profile runs twice — with the hardened target (per-connection
//! identity enforcement + per-tenant drain rate limiting, the default)
//! and with enforcement off ("trust the wire", the pre-hardening
//! baseline).
//!
//! Three bounds are asserted for the *honest* tenants of every hardened
//! row, the same contracts the fault-free suite enforces:
//!
//! 1. **Fairness** — per-tenant completion spread across the honest TC
//!    tenants stays ≤ 5% of their mean (the `repro scale` bound).
//! 2. **Exactly-once** — every honest submission completes exactly
//!    once: no I/O errors, no exhausted retries, and submissions equal
//!    completions once the settle window drains the tail.
//! 3. **LS tail** — the honest LS tenant's p99.99 stays within 5× the
//!    attack-free baseline (the paper's SLO metric; a tenant forging
//!    LS flags would otherwise swamp the bypass path).
//!
//! The enforcement-off rows demonstrate the defense does real work: at
//! least one unhardened attack row must *violate* a bound (the grid
//! would otherwise prove nothing). Saved as `adversary.csv`.

use crate::sweep::run_all;
use crate::Durations;
use fabric::Gbps;
use faults::{Adversary, FaultProfile};
use workload::scenario::WindowSpec;
use workload::{Mix, RunResult, RuntimeKind, Scenario, Table};

/// Honest LS tenants (slot 0).
pub const LS_TENANTS: usize = 1;
/// TC tenants (slots 1..=5); the last one is the adversary.
pub const TC_TENANTS: usize = 5;
/// The adversarial tenant's link/slot index.
pub const ADVERSARY_LINK: usize = LS_TENANTS + TC_TENANTS - 1;
/// The honest TC tenant whose initiator byte the spoof attack forges.
pub const SPOOF_VICTIM: u8 = 2;

/// One attack profile of the grid: a named knob setting for the
/// adversary. Probabilities are per intercepted capsule.
pub struct Attack {
    /// Row label.
    pub name: &'static str,
    /// Adversary knobs with `link`/`spoof_victim`/`harden` left default;
    /// [`scenarios`] fills those per row.
    pub profile: Adversary,
}

/// The attack grid, row-major order. `none` keeps the adversary inert
/// (all probabilities zero) and anchors the baseline: both of its rows
/// must match each other and trip no defense counter.
pub fn attacks() -> [Attack; 6] {
    let zero = Adversary::default();
    [
        Attack {
            name: "none",
            profile: zero,
        },
        Attack {
            name: "forge_ls",
            profile: Adversary {
                forge_ls_p: 0.5,
                ..zero
            },
        },
        Attack {
            name: "invalid_flags",
            profile: Adversary {
                invalid_flags_p: 0.25,
                ..zero
            },
        },
        Attack {
            name: "drain_flood",
            profile: Adversary {
                drain_flood_p: 1.0,
                ..zero
            },
        },
        Attack {
            name: "replay",
            profile: Adversary {
                replay_p: 0.3,
                ..zero
            },
        },
        // The spoof profile combines the forged initiator byte with
        // forged drain flags: every adversary capsule claims to be the
        // victim, and half of them force-flush the victim's staged
        // queue. Unhardened, the victim's window pacing and recovery
        // slots are driven by a stranger; hardened, the whole stream
        // dies at the identity check.
        Attack {
            name: "spoof",
            profile: Adversary {
                spoof_p: 1.0,
                drain_flood_p: 0.5,
                ..zero
            },
        },
    ]
}

/// Fault profile for one row: no fabric loss — the only disturbance is
/// the adversary — but the full recovery machinery is armed so the
/// epoch-guarded CID slots (the replay defense) are live, exactly as in
/// the chaos suite.
pub(crate) fn profile(attack: &Attack, harden: bool) -> FaultProfile {
    FaultProfile {
        retry: Some(nvmf::RetryPolicy {
            timeout: simkit::SimDuration::from_micros(2_000),
            max_retries: 8,
        }),
        redrain_timeout: Some(simkit::SimDuration::from_micros(2_000)),
        adversary: Some(Adversary {
            link: ADVERSARY_LINK,
            spoof_victim: SPOOF_VICTIM,
            harden,
            ..attack.profile
        }),
        ..FaultProfile::default()
    }
}

/// The attack × enforcement grid, in sweep order (attack-major,
/// hardened row first).
pub fn scenarios(d: Durations) -> Vec<Scenario> {
    let mut v = Vec::new();
    for attack in &attacks() {
        for harden in [true, false] {
            let mut sc = Scenario::ratio(
                RuntimeKind::Opf,
                Gbps::G100,
                Mix::READ,
                LS_TENANTS,
                TC_TENANTS,
            );
            sc.window = WindowSpec::Static(64);
            sc.faults = Some(profile(attack, harden));
            d.apply(&mut sc);
            v.push(sc);
        }
    }
    v
}

/// Honest TC tenant slots (every TC slot except the adversary's).
pub(crate) fn honest_tc() -> impl Iterator<Item = usize> {
    (LS_TENANTS..LS_TENANTS + TC_TENANTS).filter(|&i| i != ADVERSARY_LINK)
}

/// Per-tenant completion spread (% of mean) across the honest TC
/// tenants.
pub(crate) fn honest_spread_pct(r: &RunResult) -> f64 {
    let per: Vec<f64> = honest_tc()
        .map(|i| {
            r.metrics
                .get(&format!("ini{i}.completed"))
                .unwrap_or_else(|| panic!("ini{i}.completed missing from snapshot"))
        })
        .collect();
    let mean = per.iter().sum::<f64>() / per.len() as f64;
    let min = per.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per.iter().copied().fold(0.0, f64::max);
    (max - min) / mean * 100.0
}

/// Stray commands across all honest tenants (LS probe included): lost
/// or duplicated completions, I/O errors, and exhausted retries. Zero
/// iff every honest submission completed exactly once.
pub(crate) fn honest_strays(r: &RunResult) -> f64 {
    let m = &r.metrics;
    let mut strays = 0.0;
    for i in (0..LS_TENANTS).chain(honest_tc()) {
        let sub = m.get(&format!("ini{i}.submitted")).unwrap_or(0.0);
        let comp = m.get(&format!("ini{i}.completed")).unwrap_or(0.0);
        strays += (sub - comp).abs();
        strays += m.get(&format!("ini{i}.errors")).unwrap_or(0.0);
        strays += m.get(&format!("ini{i}.retry_exhausted")).unwrap_or(0.0);
    }
    strays
}

/// Render the grid table from [`scenarios`]-ordered results, asserting
/// the hardened bounds and the unhardened violation.
pub fn table(results: &[RunResult]) -> Table {
    let mut t = Table::new([
        "attack",
        "harden",
        "tc_kiops",
        "ls_p9999_us",
        "spread_pct",
        "honest_strays",
        "adv_attacks",
        "spoofs_dropped",
        "drains_suppressed",
        "tgt_protocol_errors",
    ]);
    // LS-tail bound: relative to the attack-free hardened row (the
    // grid's first scenario), since absolute tails depend on durations.
    let ls_tail_bound = results[0].ls_p9999_us * 5.0;
    let mut unhardened_violations = 0u32;
    let mut idx = 0;
    for attack in &attacks() {
        for harden in [true, false] {
            let r = &results[idx];
            idx += 1;
            let m = &r.metrics;
            let spread = honest_spread_pct(r);
            let strays = honest_strays(r);
            let adv_attacks = [
                "forged_ls",
                "forged_invalid",
                "drain_floods",
                "replays",
                "spoofs",
            ]
            .iter()
            .map(|k| m.get(&format!("faults.adv_{k}")).unwrap_or(0.0))
            .sum::<f64>();
            let spoofs_dropped = m.get("pair0.tgt.spoofs_dropped").unwrap_or(0.0);
            let suppressed = m.get("pair0.tgt.drains_suppressed").unwrap_or(0.0);
            let proto_errs = m.get("pair0.tgt.protocol_errors").unwrap_or(0.0);

            if harden {
                assert!(
                    spread <= 5.0,
                    "{}: hardened honest-tenant spread {spread:.2}% exceeds the \
                     5% fairness bound",
                    attack.name
                );
                assert_eq!(
                    strays, 0.0,
                    "{}: hardened run lost/duplicated honest commands",
                    attack.name
                );
                assert!(
                    r.ls_p9999_us <= ls_tail_bound,
                    "{}: hardened LS p99.99 {:.1}us exceeds 5x the attack-free \
                     baseline ({ls_tail_bound:.1}us)",
                    attack.name,
                    r.ls_p9999_us
                );
                if attack.name != "none" {
                    assert!(
                        adv_attacks > 0.0,
                        "{}: adversary never fired — the row proves nothing",
                        attack.name
                    );
                }
                match attack.name {
                    // Honest drain cadence never trips the limiter, and
                    // nobody forges identities in the baseline row.
                    "none" => assert_eq!((spoofs_dropped, suppressed), (0.0, 0.0)),
                    "spoof" => assert!(spoofs_dropped > 0.0, "identity check never engaged"),
                    "drain_flood" => assert!(suppressed > 0.0, "rate limiter never engaged"),
                    _ => {}
                }
            } else if attack.name != "none"
                && (spread > 5.0 || strays > 0.0 || r.ls_p9999_us > ls_tail_bound)
            {
                unhardened_violations += 1;
            }

            t.row([
                attack.name.to_string(),
                if harden { "on" } else { "off" }.to_string(),
                format!("{:.1}", r.tc_iops / 1e3),
                format!("{:.1}", r.ls_p9999_us),
                format!("{spread:.3}"),
                format!("{strays:.0}"),
                format!("{adv_attacks:.0}"),
                format!("{spoofs_dropped:.0}"),
                format!("{suppressed:.0}"),
                format!("{proto_errs:.0}"),
            ]);
        }
    }
    assert!(
        unhardened_violations > 0,
        "no enforcement-off row violated a bound — the defenses are not \
         demonstrably doing work"
    );
    t
}

/// Run the attack grid, assert its contracts, and save `adversary.csv`.
pub fn all(d: Durations, threads: Option<usize>) {
    println!(
        "== Adversary: attack profile x enforcement, NVMe-oPF 1 LS : 5 TC read, 100 Gbps ==\n"
    );
    let results = run_all(&scenarios(d), threads);
    let t = table(&results);
    println!("{}", workload::render_table(&t));
    crate::save_csv("adversary", &t);
}
