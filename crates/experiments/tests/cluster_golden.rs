//! Golden guard for the multi-target cluster plane (DESIGN.md §16).
//!
//! Two artifacts are pinned byte-for-byte:
//!
//! - `scale_cluster.csv` — the tenants × shards × targets grid.
//!   `cluster::scale_table` already asserts cluster-wide fairness,
//!   shard invariance and cluster engagement internally; the golden
//!   additionally pins the absolute numbers, including that the
//!   targets axis actually scales throughput (two SSDs ≈ 2×).
//! - `adversary_targets2.csv` — the hardened attack grid rerun on a
//!   2-target cluster with a live migration of the spoof victim
//!   mid-measurement. The table asserts honest-tenant fairness,
//!   exactly-once completion and migration completion per row; the
//!   golden pins the attack counters and re-drive volume.
//!
//! The single-target goldens (`scale.csv` et al.) are locked by
//! `shard_differential` and `zero_copy_differential`; cluster runs are
//! a separate golden space and must never perturb them.

use experiments::sweep::run_all;
use experiments::{cluster, Durations};

fn golden(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    std::fs::read_to_string(format!("{path}/{name}.csv"))
        .unwrap_or_else(|e| panic!("missing golden {name}.csv: {e}"))
}

fn assert_csv_matches(name: &str, rendered: &str) {
    let want = golden(name);
    if rendered != want {
        for (i, (r, w)) in rendered.lines().zip(want.lines()).enumerate() {
            assert_eq!(r, w, "{name}.csv line {}", i + 1);
        }
        assert_eq!(
            rendered.lines().count(),
            want.lines().count(),
            "{name}.csv line count"
        );
        panic!("{name}.csv differs only in line endings / trailing bytes");
    }
}

#[test]
fn scale_cluster_quick_matches_golden() {
    let d = Durations::quick();
    let results = run_all(&cluster::scenarios(d, true, 2), Some(1));
    assert_csv_matches(
        "scale_cluster",
        &workload::csv_table(&cluster::scale_table(&results, true, 2)),
    );
}

#[test]
fn adversary_targets2_quick_matches_golden() {
    let d = Durations::quick();
    let results = run_all(&cluster::adversary_scenarios(d, 2), Some(1));
    assert_csv_matches(
        "adversary_targets2",
        &workload::csv_table(&cluster::adversary_table(&results, 2)),
    );
}
