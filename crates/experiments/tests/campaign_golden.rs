//! Golden guard for the campaign engine (DESIGN.md §18).
//!
//! Pins the quick-preset campaign byte-for-byte: the checked-in
//! `scenarios/campaign_quick.json` (3 seeds × 6 traffic models) must
//! render exactly the committed `summary.json` + `summary.csv`, with
//! every expectation gate green — the same artifacts CI's
//! `campaign-smoke` job gates on. A second test feeds the engine a
//! deliberately unsatisfiable spec and asserts the gate actually
//! rejects: a gate that cannot fail guards nothing.

use experiments::campaign::{render_summary_csv, render_summary_json, run_campaign, CampaignSpec};

fn golden(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("missing golden {name}: {e}"))
}

fn quick_spec() -> CampaignSpec {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/campaign_quick.json"
    );
    let src = std::fs::read_to_string(path).expect("checked-in quick campaign spec");
    CampaignSpec::from_json_str(&src).expect("quick spec parses")
}

fn assert_matches(name: &str, rendered: &str) {
    let want = golden(name);
    if rendered != want {
        for (i, (r, w)) in rendered.lines().zip(want.lines()).enumerate() {
            assert_eq!(r, w, "{name} line {}", i + 1);
        }
        assert_eq!(
            rendered.lines().count(),
            want.lines().count(),
            "{name} line count"
        );
        panic!("{name} differs only in line endings / trailing bytes");
    }
}

#[test]
fn quick_campaign_matches_goldens_and_passes_every_gate() {
    let spec = quick_spec();
    assert_eq!(spec.seeds.len(), 3, "quick preset sweeps three seeds");
    assert!(
        spec.scenarios.len() >= 5,
        "quick preset covers at least five traffic models"
    );
    let summary = run_campaign(&spec, Some(2));
    assert!(
        summary.pass,
        "quick campaign gate must be green: {:?}",
        summary
            .outcomes
            .iter()
            .filter(|o| !o.pass)
            .collect::<Vec<_>>()
    );
    assert_matches(
        "campaign_quick.summary.json",
        &render_summary_json(&summary),
    );
    assert_matches("campaign_quick.summary.csv", &render_summary_csv(&summary));
}

#[test]
fn unsatisfiable_expectations_fail_the_gate() {
    // Same engine, tiny grid, bounds no run can meet. The gate must
    // reject — and report which checks failed, not panic.
    let spec = CampaignSpec::from_json_str(
        r#"{
          "name": "doomed", "seeds": [7], "warmup_s": 0.005, "measure_s": 0.02,
          "scenarios": [{"name": "p", "traffic": {"model": "poisson", "rate_kiops": 20}}],
          "expectations": [
            {"scenario": "p", "check": "exactly_once"},
            {"scenario": "p", "check": "completion_floor", "min": 2.0},
            {"scenario": "p", "metric": "tc.iops", "stat": "mean", "min": 1e12},
            {"scenario": "p", "metric": "no.such.metric", "stat": "max", "max": 1.0}
          ]
        }"#,
    )
    .expect("doomed spec is structurally valid");
    let summary = run_campaign(&spec, Some(1));
    assert!(!summary.pass, "impossible bounds must fail the gate");
    let verdicts: Vec<bool> = summary.outcomes.iter().map(|o| o.pass).collect();
    // exactly_once genuinely holds; the three impossible checks fail.
    assert_eq!(verdicts, vec![true, false, false, false]);
    // A missing metric reports no observed value rather than panicking.
    assert_eq!(summary.outcomes[3].observed, None);
    // The failing summary still renders deterministically.
    assert_eq!(
        render_summary_json(&summary),
        render_summary_json(&run_campaign(&spec, Some(1)))
    );
}
