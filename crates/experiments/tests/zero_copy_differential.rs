//! Differential guard for the zero-copy data plane.
//!
//! The `Bytes` payload refactor and the allocation-free drain paths are
//! representation changes: every simulated event, metric and rendered CSV
//! must be bit-identical to the allocating implementation. The goldens
//! under `tests/golden/` were rendered by that implementation (quick
//! durations, single-threaded) immediately before the refactor; these
//! tests re-render the same tables and compare bytes. `chaos` covers the
//! fault-profile variant, where the fault plane interposes on (and
//! copy-on-write-mutates) shared payloads.

use experiments::sweep::run_all;
use experiments::{adversary, chaos, fig6, observe, table1, Durations};

fn golden(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    std::fs::read_to_string(format!("{path}/{name}.csv"))
        .unwrap_or_else(|e| panic!("missing golden {name}.csv: {e}"))
}

fn assert_csv_matches(name: &str, rendered: &str) {
    let want = golden(name);
    if rendered != want {
        // Pinpoint the first divergent line before failing: a whole-file
        // dump of two multi-kilobyte CSVs is unreadable.
        for (i, (r, w)) in rendered.lines().zip(want.lines()).enumerate() {
            assert_eq!(r, w, "{name}.csv line {}", i + 1);
        }
        assert_eq!(
            rendered.lines().count(),
            want.lines().count(),
            "{name}.csv line count"
        );
        panic!("{name}.csv differs only in line endings / trailing bytes");
    }
}

/// Static hardware table: no simulation involved, but it shares the CSV
/// renderer with everything else.
#[test]
fn table1_matches_golden() {
    assert_csv_matches("table1", &workload::csv_table(&table1::build()));
}

/// Fig 6(c) quick repro (10 scenarios, read+write, SPDK vs oPF): the
/// fault-free TC hot path end to end.
#[test]
fn fig6c_quick_matches_golden() {
    let results = run_all(&fig6::fig6c_scenarios(Durations::quick()), Some(1));
    assert_csv_matches("fig6c", &workload::csv_table(&fig6::fig6c_table(&results)));
}

/// Observability snapshot: the full metric-name union, so any
/// accidentally added/removed/renumbered metric shows up as a diff.
#[test]
fn observe_quick_matches_golden() {
    let results = run_all(&observe::scenarios(Durations::quick()), Some(1));
    assert_csv_matches(
        "observe",
        &workload::csv_table(&observe::full_table(&results)),
    );
}

/// Chaos grid (loss × window, fault profile installed): exercises the
/// fault plane's payload interposition — corrupt actions must
/// copy-on-write without disturbing other holders of the same `Bytes`.
#[test]
fn chaos_quick_matches_golden() {
    let results = run_all(&chaos::scenarios(Durations::quick()), Some(1));
    assert_csv_matches("chaos", &workload::csv_table(&chaos::table(&results)));
}

/// Adversary grid (attack profile × enforcement): the hardened rows must
/// hold the fairness/exactly-once/LS-tail bounds (asserted inside
/// `table`), the enforcement-off rows must demonstrably violate one, and
/// the rendered table must stay bit-identical run to run.
#[test]
fn adversary_quick_matches_golden() {
    let results = run_all(&adversary::scenarios(Durations::quick()), Some(1));
    assert_csv_matches(
        "adversary",
        &workload::csv_table(&adversary::table(&results)),
    );
}
