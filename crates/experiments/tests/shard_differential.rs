//! Differential guard for the sharded kernel and multi-reactor target.
//!
//! DESIGN.md §13's determinism contract: the shard count is pure
//! bookkeeping — per-lane event heaps merged on the kernel's global
//! schedule stamp reproduce the serial total order bit-identically, and
//! the target's mailbox handoffs are synchronous at sim-time
//! granularity. These tests enforce the contract end to end by
//! re-rendering the *pre-sharding* golden CSVs (the same files
//! `zero_copy_differential` checks at shards=1) under 2 and 4 shards and
//! comparing bytes. `chaos` covers the fault-plane variant: retransmit
//! timers, re-drains and link flaps must also replay identically on a
//! sharded kernel.
//!
//! The `scale` golden locks the sweep that *demonstrates* the property:
//! its result columns are shard-invariant while the cross-shard
//! bookkeeping columns prove the routing engaged.

use experiments::sweep::run_all;
use experiments::{chaos, fig6, observe, scale, table1, Durations};

fn golden(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    std::fs::read_to_string(format!("{path}/{name}.csv"))
        .unwrap_or_else(|e| panic!("missing golden {name}.csv: {e}"))
}

fn assert_csv_matches(name: &str, shards: usize, rendered: &str) {
    let want = golden(name);
    if rendered != want {
        for (i, (r, w)) in rendered.lines().zip(want.lines()).enumerate() {
            assert_eq!(r, w, "{name}.csv line {} at {shards} shards", i + 1);
        }
        assert_eq!(
            rendered.lines().count(),
            want.lines().count(),
            "{name}.csv line count at {shards} shards"
        );
        panic!("{name}.csv differs only in line endings / trailing bytes");
    }
}

/// Every shard count the differential sweep re-renders under. 1 is
/// already covered by `zero_copy_differential`; 2 and 4 exercise the
/// lane merge, the round-robin tenant assignment and the mailbox.
const SHARD_COUNTS: [usize; 2] = [2, 4];

/// Static hardware table: shard-free by nature, but kept in the sweep so
/// the CSV renderer path is covered identically.
#[test]
fn table1_matches_golden_under_sharding() {
    assert_csv_matches("table1", 1, &workload::csv_table(&table1::build()));
}

/// Fig 6(c) quick repro under 2 and 4 shards: the fault-free TC hot
/// path — staging, drains, coalescing, the device meter — must be
/// byte-identical to the single-shard golden.
#[test]
fn fig6c_quick_matches_golden_under_sharding() {
    for shards in SHARD_COUNTS {
        let d = Durations::quick().with_shards(shards);
        let results = run_all(&fig6::fig6c_scenarios(d), Some(1));
        assert_csv_matches(
            "fig6c",
            shards,
            &workload::csv_table(&fig6::fig6c_table(&results)),
        );
    }
}

/// Observability snapshot under sharding: the full metric-name union.
/// This is the strongest guard — any metric key added, removed or
/// perturbed by the reactor split (including per-reactor counters
/// accidentally leaking into snapshots) diffs here.
#[test]
fn observe_quick_matches_golden_under_sharding() {
    for shards in SHARD_COUNTS {
        let d = Durations::quick().with_shards(shards);
        let results = run_all(&observe::scenarios(d), Some(1));
        assert_csv_matches(
            "observe",
            shards,
            &workload::csv_table(&observe::full_table(&results)),
        );
    }
}

/// Chaos grid under sharding: the fault plane (drops, retransmits,
/// re-drain timers) rides the same sharded lanes and must replay
/// byte-identically.
#[test]
fn chaos_quick_matches_golden_under_sharding() {
    for shards in SHARD_COUNTS {
        let d = Durations::quick().with_shards(shards);
        let results = run_all(&chaos::scenarios(d), Some(1));
        assert_csv_matches(
            "chaos",
            shards,
            &workload::csv_table(&chaos::table(&results)),
        );
    }
}

/// The scale sweep's quick preset against its golden. `scale::table`
/// already asserts shard invariance, routing engagement and the 5%
/// fairness bound internally; the golden additionally pins the absolute
/// numbers (throughput, per-tenant counts, cross-shard traffic).
#[test]
fn scale_quick_matches_golden() {
    let d = Durations::quick();
    let results = run_all(&scale::scenarios(d, true), Some(1));
    assert_csv_matches(
        "scale",
        1,
        &workload::csv_table(&scale::table(&results, true)),
    );
}

/// The same quick scale grid with cross-shard schedules detoured
/// through the mailbox doorbell mesh (`parallel: true`, DESIGN.md §17).
/// The detour is pure bookkeeping on the global `(at, seq)` merge key,
/// so the golden must reproduce byte for byte — and the side-band
/// routing counter proves the mesh really carried the traffic rather
/// than the flag being dead.
#[test]
fn scale_quick_matches_golden_with_meshed_routing() {
    let d = Durations::quick().with_parallel(true);
    let results = run_all(&scale::scenarios(d, true), Some(1));
    assert!(
        results.iter().any(|r| r.parallel_routed > 0),
        "no scale run ever routed through the doorbell mesh"
    );
    assert_csv_matches(
        "scale",
        1,
        &workload::csv_table(&scale::table(&results, true)),
    );
}
