//! `sweep` — run a scenario sweep or campaign from a JSON spec.
//!
//! ```text
//! sweep <spec.json> [--out DIR] [--threads N]
//! sweep campaign <spec.json> [--out DIR] [--threads N]
//! ```
//!
//! The sweep form writes `BENCH_<name>.json` (full report with per-point
//! metric snapshots) and `BENCH_<name>.csv` (scalar columns) under
//! `--out`, defaulting to the workspace `results/` directory. The
//! campaign form expands a seeds × traffic-scenario grid, evaluates the
//! spec's expectation gates, writes `campaign_<name>/summary.{json,csv}`
//! under `--out`, and exits non-zero if any gate fails. Output is
//! bit-identical across runs of the same spec.

use std::path::PathBuf;
use std::process::ExitCode;

use experiments::campaign::{run_campaign, write_outputs, CampaignSpec};
use sweep::{report_csv, report_json, run_spec, SweepSpec};

const USAGE: &str = "usage: sweep [campaign] <spec.json> [--out DIR] [--threads N]";

fn main() -> ExitCode {
    let mut spec_path: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut campaign_mode = false;

    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("campaign") {
        campaign_mode = true;
        args.next();
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => return fail("--out needs a directory"),
            },
            "--threads" => match args.next().and_then(|t| t.parse().ok()) {
                Some(0) | None => return fail("--threads needs a positive integer"),
                Some(t) => threads = Some(t),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if spec_path.is_none() && !arg.starts_with('-') => {
                spec_path = Some(PathBuf::from(arg));
            }
            other => return fail(&format!("unexpected argument {other:?}")),
        }
    }

    let Some(spec_path) = spec_path else {
        return fail("missing spec file");
    };
    let src = match std::fs::read_to_string(&spec_path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {}: {e}", spec_path.display())),
    };

    if campaign_mode {
        let spec = match CampaignSpec::from_json_str(&src) {
            Ok(s) => s,
            Err(e) => return fail(&format!("bad spec {}: {e}", spec_path.display())),
        };
        let summary = run_campaign(&spec, threads);
        experiments::campaign::print_outcomes(&summary);
        let out_dir = out_dir.unwrap_or_else(experiments::results_dir);
        match write_outputs(&summary, &out_dir) {
            Ok(p) => println!("{}", p.display()),
            Err(e) => return fail(&format!("cannot write summary: {e}")),
        }
        return if summary.pass {
            ExitCode::SUCCESS
        } else {
            eprintln!("sweep: campaign expectation gate FAILED");
            ExitCode::FAILURE
        };
    }

    let mut spec = match SweepSpec::from_json(&src) {
        Ok(s) => s,
        Err(e) => return fail(&format!("bad spec {}: {e}", spec_path.display())),
    };
    if threads.is_some() {
        // Command line overrides the spec. Thread count never changes the
        // report bytes — only the wall-clock time to produce them.
        spec.threads = threads;
    }

    let points = spec.expand();
    eprintln!(
        "sweep \"{}\": {} points ({} runtimes x {} speeds x {} mixes x {} ratios x {} seeds)",
        spec.name,
        points.len(),
        spec.runtimes.len(),
        spec.speeds.len(),
        spec.mixes.len(),
        spec.ratios.len(),
        spec.seeds.len(),
    );

    let results = run_spec(&spec);

    let out_dir = out_dir.unwrap_or_else(experiments::results_dir);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        return fail(&format!("cannot create {}: {e}", out_dir.display()));
    }
    let json_path = out_dir.join(format!("BENCH_{}.json", spec.name));
    let csv_path = out_dir.join(format!("BENCH_{}.csv", spec.name));
    if let Err(e) = std::fs::write(&json_path, report_json(&spec, &results)) {
        return fail(&format!("cannot write {}: {e}", json_path.display()));
    }
    if let Err(e) = std::fs::write(&csv_path, report_csv(&results)) {
        return fail(&format!("cannot write {}: {e}", csv_path.display()));
    }
    println!("{}", json_path.display());
    println!("{}", csv_path.display());
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("sweep: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
