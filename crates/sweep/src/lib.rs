//! # sweep — automated scenario sweeps with unified metrics output
//!
//! Takes a scenario description (JSON: runtime × speed × mix × LS:TC
//! ratio × seeds), expands the cross product in a fixed order, fans the
//! runs out across OS threads (each simulation is single-threaded and
//! deterministic), and emits a machine-readable `BENCH_<name>.json`
//! report — every point carrying the whole-cluster [`simkit::Metrics`]
//! snapshot — plus a flat CSV for spreadsheets.
//!
//! Output is bit-identical across runs of the same spec: points are
//! ordered by expansion index (never by completion), floats use Rust's
//! shortest round-trip formatting, and no wall-clock time is recorded.
//!
//! ## Spec schema
//!
//! ```json
//! {
//!   "name": "smoke",
//!   "runtimes": ["spdk", "opf"],
//!   "speeds": [10, 25, 100],
//!   "mixes": ["read", "write", "mixed"],
//!   "ratios": [[1, 1], [1, 4]],
//!   "seeds": [42, 43],
//!   "warmup_s": 0.05,
//!   "measure_s": 0.15,
//!   "threads": 4
//! }
//! ```
//!
//! Only `name` is required. `mixes` entries may also be numbers (the
//! read fraction, e.g. `0.7`). `threads` defaults to the machine's
//! available parallelism; everything else defaults to a small smoke
//! sweep (see [`SweepSpec::from_json`]).
//!
//! An optional `"faults"` block installs a [`faults::FaultProfile`] on
//! every expanded scenario (probabilities per PDU; durations in µs;
//! scheduled windows in seconds):
//!
//! ```json
//! {
//!   "faults": {
//!     "drop_p": 0.01, "dup_p": 0.001, "delay_p": 0.01, "delay_max_us": 20,
//!     "corrupt_p": 0.0, "reorder_p": 0.0, "reorder_hold_us": 5,
//!     "retry_timeout_us": 300, "retry_max": 6, "redrain_timeout_us": 500,
//!     "keepalive_us": 4000, "kato_us": 10000, "settle_s": 0.05,
//!     "flaps": [{"link": 0, "at_s": 0.08, "for_s": 0.015}],
//!     "degrade": [{"at_s": 0.1, "for_s": 0.02, "factor": 4.0}],
//!     "stalls": [{"at_s": 0.12, "for_s": 0.002}],
//!     "crashes": [{"tenant": 1, "at_s": 0.1, "for_s": 0.03}],
//!     "adversary": {
//!       "link": 4, "forge_ls_p": 0.5, "invalid_flags_p": 0.0,
//!       "drain_flood_p": 0.0, "replay_p": 0.0,
//!       "spoof_p": 0.0, "spoof_victim": 2, "harden": true
//!     }
//!   }
//! }
//! ```
//!
//! Recovery knobs default on (see `FaultProfile::default`); a zero
//! `retry_timeout_us` / `redrain_timeout_us` disables that mechanism.
//! The optional `"adversary"` sub-block rides one tenant's link with
//! protocol-level attacks (see [`faults::Adversary`]); `harden` selects
//! whether the targets keep their DESIGN.md §14 defenses on.
//!
//! Cluster scenarios (DESIGN.md §16) add three more knobs — `"targets"`
//! (the cluster size), a `"placement"` block, and a `"migration"` block.
//! The two blocks are strictly validated: an unknown key inside either
//! is a hard parse error, never a silent no-op.
//!
//! ```json
//! {
//!   "targets": 2,
//!   "placement": {"policy": "pinned", "pins": [0, 1, 0]},
//!   "migration": {"moves": [{"tenant": 1, "at_s": 0.05, "to_target": 0}]}
//! }
//! ```

pub use simkit::json;

use fabric::Gbps;
use faults::{Adversary, Crash, Degrade, FaultProfile, KeepAliveSpec, LinkFlap, Stall};
use json::Json;
use nvmf::RetryPolicy;
use simkit::metrics::format_f64;
use simkit::{SimDuration, SimTime};
use workload::scenario::Speed;
use workload::{MigrationSpec, Mix, PlacementSpec, RunResult, RuntimeKind, Scenario};

/// A parsed sweep specification.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Report name: output lands in `BENCH_<name>.json` / `.csv`.
    pub name: String,
    /// Runtimes to sweep.
    pub runtimes: Vec<RuntimeKind>,
    /// Fabric speeds to sweep.
    pub speeds: Vec<Gbps>,
    /// Read/write mixes to sweep.
    pub mixes: Vec<Mix>,
    /// LS:TC tenant ratios to sweep.
    pub ratios: Vec<(usize, usize)>,
    /// Seeds to sweep.
    pub seeds: Vec<u64>,
    /// Warmup simulated seconds per run.
    pub warmup_s: f64,
    /// Measured simulated seconds per run.
    pub measure_s: f64,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Fault-injection profile applied to every expanded scenario
    /// (`None` = perfect fabric, bit-identical to pre-faults sweeps).
    pub faults: Option<FaultProfile>,
    /// Cluster size: number of NVMe-oF targets per scenario (1 = the
    /// classic single-target path).
    pub targets: usize,
    /// Tenant → target placement policy for cluster scenarios.
    pub placement: PlacementSpec,
    /// Live migrations applied to every expanded scenario.
    pub migrations: Vec<MigrationSpec>,
    /// Route cross-lane schedules through the kernel's mailbox-doorbell
    /// mesh in every expanded scenario (DESIGN.md §17). Results are
    /// byte-identical to the direct path by construction.
    pub parallel: bool,
}

/// One expanded point of the sweep (the cross-product coordinates).
#[derive(Clone, Debug, PartialEq)]
pub struct Point {
    /// Runtime under test.
    pub runtime: RuntimeKind,
    /// Fabric speed in Gbps.
    pub speed_gbps: u32,
    /// Mix read fraction.
    pub read_fraction: f64,
    /// LS tenants.
    pub ls: usize,
    /// TC tenants.
    pub tc: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Point {
    fn runtime_name(&self) -> &'static str {
        match self.runtime {
            RuntimeKind::Spdk => "spdk",
            RuntimeKind::Opf => "opf",
        }
    }

    fn mix_name(&self) -> String {
        if self.read_fraction >= 1.0 {
            "read".to_string()
        } else if self.read_fraction <= 0.0 {
            "write".to_string()
        } else {
            format!("mixed-{}", format_f64(self.read_fraction))
        }
    }
}

fn parse_runtime(v: &Json) -> Result<RuntimeKind, String> {
    match v.as_str() {
        Some("spdk") | Some("SPDK") => Ok(RuntimeKind::Spdk),
        Some("opf") | Some("OPF") | Some("nvme-opf") => Ok(RuntimeKind::Opf),
        _ => Err(format!("unknown runtime {v:?} (want \"spdk\" or \"opf\")")),
    }
}

fn parse_speed(v: &Json) -> Result<Gbps, String> {
    match v.as_u64() {
        Some(10) => Ok(Gbps::G10),
        Some(25) => Ok(Gbps::G25),
        Some(100) => Ok(Gbps::G100),
        _ => Err(format!("unknown speed {v:?} (want 10, 25 or 100)")),
    }
}

fn parse_mix(v: &Json) -> Result<Mix, String> {
    if let Some(f) = v.as_f64() {
        if (0.0..=1.0).contains(&f) {
            return Ok(Mix { read_fraction: f });
        }
        return Err(format!("mix fraction {f} outside [0, 1]"));
    }
    match v.as_str() {
        Some("read") => Ok(Mix::READ),
        Some("write") => Ok(Mix::WRITE),
        Some("mixed") => Ok(Mix::MIXED),
        _ => Err(format!(
            "unknown mix {v:?} (want \"read\", \"write\", \"mixed\" or a fraction)"
        )),
    }
}

fn parse_ratio(v: &Json) -> Result<(usize, usize), String> {
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("ratio {v:?} not a pair"))?;
    match arr {
        [ls, tc] => {
            let ls = ls.as_u64().ok_or("LS count not an integer")? as usize;
            let tc = tc.as_u64().ok_or("TC count not an integer")? as usize;
            if ls + tc == 0 {
                return Err("ratio [0, 0] has no tenants".to_string());
            }
            Ok((ls, tc))
        }
        _ => Err(format!("ratio {v:?} must be [ls, tc]")),
    }
}

fn list<T>(
    doc: &Json,
    key: &str,
    parse_one: impl Fn(&Json) -> Result<T, String>,
    default: Vec<T>,
) -> Result<Vec<T>, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| format!("{key} must be an array"))?;
            if arr.is_empty() {
                return Err(format!("{key} must not be empty"));
            }
            arr.iter()
                .map(&parse_one)
                .collect::<Result<Vec<T>, String>>()
                .map_err(|e| format!("{key}: {e}"))
        }
    }
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("faults.{key} must be a number")),
    }
}

fn opt_prob(v: &Json, key: &str) -> Result<Option<f64>, String> {
    match opt_f64(v, key)? {
        Some(p) if !(0.0..=1.0).contains(&p) => Err(format!("faults.{key} = {p} outside [0, 1]")),
        other => Ok(other),
    }
}

/// A duration given in microseconds.
fn opt_us(v: &Json, key: &str) -> Result<Option<SimDuration>, String> {
    Ok(opt_f64(v, key)?.map(|us| SimDuration::from_secs_f64(us / 1e6)))
}

/// An `{"at_s": …, "for_s": …}` scheduled window.
fn window(v: &Json, key: &str) -> Result<(SimTime, SimDuration), String> {
    let at = opt_f64(v, "at_s")?.ok_or_else(|| format!("faults.{key} entry needs at_s"))?;
    let dur = opt_f64(v, "for_s")?.ok_or_else(|| format!("faults.{key} entry needs for_s"))?;
    if at < 0.0 || dur < 0.0 {
        return Err(format!("faults.{key} window must be non-negative"));
    }
    Ok((
        SimTime::from_nanos((at * 1e9) as u64),
        SimDuration::from_secs_f64(dur),
    ))
}

fn parse_faults(doc: &Json) -> Result<Option<FaultProfile>, String> {
    let Some(v) = doc.get("faults") else {
        return Ok(None);
    };
    let mut p = FaultProfile::default();
    if let Some(x) = opt_prob(v, "drop_p")? {
        p.drop_p = x;
    }
    if let Some(x) = opt_prob(v, "dup_p")? {
        p.dup_p = x;
    }
    if let Some(x) = opt_prob(v, "delay_p")? {
        p.delay_p = x;
    }
    if let Some(d) = opt_us(v, "delay_max_us")? {
        p.delay_max = d;
    }
    if let Some(x) = opt_prob(v, "corrupt_p")? {
        p.corrupt_p = x;
    }
    if let Some(x) = opt_prob(v, "reorder_p")? {
        p.reorder_p = x;
    }
    if let Some(d) = opt_us(v, "reorder_hold_us")? {
        p.reorder_hold = d;
    }
    if let Some(d) = opt_us(v, "retry_timeout_us")? {
        p.retry = (d > SimDuration::ZERO).then_some(RetryPolicy {
            timeout: d,
            max_retries: p.retry.map_or(6, |r| r.max_retries),
        });
    }
    if let Some(n) = opt_f64(v, "retry_max")? {
        if let Some(r) = &mut p.retry {
            r.max_retries = n as u32;
        }
    }
    if let Some(d) = opt_us(v, "redrain_timeout_us")? {
        p.redrain_timeout = (d > SimDuration::ZERO).then_some(d);
    }
    if let Some(every) = opt_us(v, "keepalive_us")? {
        let kato = opt_us(v, "kato_us")?.unwrap_or(every * 3);
        p.keepalive = Some(KeepAliveSpec { every, kato });
    }
    if let Some(s) = opt_f64(v, "settle_s")? {
        if !(s >= 0.0 && s.is_finite()) {
            return Err("faults.settle_s must be finite and non-negative".to_string());
        }
        p.settle_s = s;
    }
    for e in v.get("flaps").and_then(Json::as_arr).unwrap_or(&[]) {
        let (at, dur) = window(e, "flaps")?;
        let link = e
            .get("link")
            .and_then(Json::as_u64)
            .ok_or("faults.flaps entry needs an integer link")? as usize;
        p.flaps.push(LinkFlap { link, at, dur });
    }
    for e in v.get("degrade").and_then(Json::as_arr).unwrap_or(&[]) {
        let (at, dur) = window(e, "degrade")?;
        let factor = opt_f64(e, "factor")?.unwrap_or(2.0);
        if !(factor >= 1.0 && factor.is_finite()) {
            return Err(format!("faults.degrade factor {factor} must be >= 1"));
        }
        p.degrades.push(Degrade { at, dur, factor });
    }
    for e in v.get("stalls").and_then(Json::as_arr).unwrap_or(&[]) {
        let (at, dur) = window(e, "stalls")?;
        p.stalls.push(Stall { at, dur });
    }
    for e in v.get("crashes").and_then(Json::as_arr).unwrap_or(&[]) {
        let (at, dur) = window(e, "crashes")?;
        let tenant = e
            .get("tenant")
            .and_then(Json::as_u64)
            .ok_or("faults.crashes entry needs an integer tenant")? as usize;
        p.crashes.push(Crash { tenant, at, dur });
    }
    if let Some(a) = v.get("adversary") {
        let mut adv = Adversary {
            link: a
                .get("link")
                .and_then(Json::as_u64)
                .ok_or("faults.adversary needs an integer link")? as usize,
            ..Adversary::default()
        };
        if let Some(x) = opt_prob(a, "forge_ls_p")? {
            adv.forge_ls_p = x;
        }
        if let Some(x) = opt_prob(a, "invalid_flags_p")? {
            adv.invalid_flags_p = x;
        }
        if let Some(x) = opt_prob(a, "drain_flood_p")? {
            adv.drain_flood_p = x;
        }
        if let Some(x) = opt_prob(a, "replay_p")? {
            adv.replay_p = x;
        }
        if let Some(x) = opt_prob(a, "spoof_p")? {
            adv.spoof_p = x;
        }
        if let Some(victim) = a.get("spoof_victim").and_then(Json::as_u64) {
            if victim > u64::from(u8::MAX) {
                return Err(format!("faults.adversary.spoof_victim {victim} exceeds u8"));
            }
            adv.spoof_victim = victim as u8;
        }
        if let Some(h) = a.get("harden").and_then(Json::as_bool) {
            adv.harden = h;
        }
        p.adversary = Some(adv);
    }
    Ok(Some(p))
}

/// Hard-error on unknown keys inside a (new-style, strictly validated)
/// block: a typo'd knob must never silently no-op.
fn check_keys(v: &Json, ctx: &str, allowed: &[&str]) -> Result<(), String> {
    if let Json::Obj(fields) = v {
        for (k, _) in fields {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("{ctx}: unknown key {k:?} (allowed: {allowed:?})"));
            }
        }
        Ok(())
    } else {
        Err(format!("{ctx} must be an object"))
    }
}

/// ```json
/// "placement": {"policy": "pinned", "pins": [0, 1, 0]}
/// ```
/// Policies: `"round_robin"` (default), `"least_loaded"`, `"pinned"`
/// (requires `pins`). Unknown keys are hard errors.
fn parse_placement(doc: &Json) -> Result<PlacementSpec, String> {
    let Some(v) = doc.get("placement") else {
        return Ok(PlacementSpec::RoundRobin);
    };
    check_keys(v, "placement", &["policy", "pins"])?;
    let policy = v
        .get("policy")
        .and_then(Json::as_str)
        .ok_or("placement needs a string \"policy\"")?;
    let pins = v.get("pins");
    match policy {
        "round_robin" | "least_loaded" if pins.is_some() => Err(format!(
            "placement.pins only applies to policy \"pinned\" (got \"{policy}\")"
        )),
        "round_robin" => Ok(PlacementSpec::RoundRobin),
        "least_loaded" => Ok(PlacementSpec::LeastLoaded),
        "pinned" => {
            let arr = pins
                .and_then(Json::as_arr)
                .ok_or("placement policy \"pinned\" needs a \"pins\" array")?;
            let pins = arr
                .iter()
                .map(|p| {
                    p.as_u64()
                        .map(|p| p as usize)
                        .ok_or_else(|| format!("placement.pins entry {p:?} not an integer"))
                })
                .collect::<Result<Vec<usize>, String>>()?;
            Ok(PlacementSpec::Pinned(pins))
        }
        other => Err(format!(
            "unknown placement policy {other:?} (want \"round_robin\", \"least_loaded\" or \"pinned\")"
        )),
    }
}

/// ```json
/// "migration": {"moves": [{"tenant": 1, "at_s": 0.05, "to_target": 0}]}
/// ```
/// `at_s` is seconds into the measured window. Unknown keys are hard
/// errors, at both the block and per-move level.
fn parse_migrations(doc: &Json) -> Result<Vec<MigrationSpec>, String> {
    let Some(v) = doc.get("migration") else {
        return Ok(Vec::new());
    };
    check_keys(v, "migration", &["moves"])?;
    let moves = v
        .get("moves")
        .and_then(Json::as_arr)
        .ok_or("migration needs a \"moves\" array")?;
    moves
        .iter()
        .map(|e| {
            check_keys(e, "migration.moves entry", &["tenant", "at_s", "to_target"])?;
            let tenant = e
                .get("tenant")
                .and_then(Json::as_u64)
                .ok_or("migration move needs an integer tenant")? as usize;
            let at_s = e
                .get("at_s")
                .and_then(Json::as_f64)
                .ok_or("migration move needs a number at_s")?;
            if !(at_s >= 0.0 && at_s.is_finite()) {
                return Err(format!(
                    "migration at_s {at_s} must be finite and non-negative"
                ));
            }
            let to_target =
                e.get("to_target")
                    .and_then(Json::as_u64)
                    .ok_or("migration move needs an integer to_target")? as usize;
            Ok(MigrationSpec {
                tenant,
                at_s,
                to_target,
            })
        })
        .collect()
}

impl SweepSpec {
    /// Parse a spec document. Only `name` is required; everything else
    /// defaults to a small two-runtime smoke sweep at 100 Gbps.
    pub fn from_json(src: &str) -> Result<SweepSpec, String> {
        let doc = json::parse(src)?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("spec needs a string \"name\"")?
            .to_string();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "name {name:?} must be non-empty [A-Za-z0-9_-] (it names the output file)"
            ));
        }
        let spec = SweepSpec {
            name,
            runtimes: list(
                &doc,
                "runtimes",
                parse_runtime,
                vec![RuntimeKind::Spdk, RuntimeKind::Opf],
            )?,
            speeds: list(&doc, "speeds", parse_speed, vec![Gbps::G100])?,
            mixes: list(&doc, "mixes", parse_mix, vec![Mix::READ])?,
            ratios: list(&doc, "ratios", parse_ratio, vec![(1, 1)])?,
            seeds: list(
                &doc,
                "seeds",
                |v| {
                    v.as_u64()
                        .ok_or_else(|| format!("seed {v:?} not an integer"))
                },
                vec![42],
            )?,
            warmup_s: doc.get("warmup_s").and_then(Json::as_f64).unwrap_or(0.05),
            measure_s: doc.get("measure_s").and_then(Json::as_f64).unwrap_or(0.15),
            threads: doc
                .get("threads")
                .map(|v| {
                    v.as_u64()
                        .filter(|&t| t >= 1)
                        .map(|t| t as usize)
                        .ok_or_else(|| format!("threads {v:?} not a positive integer"))
                })
                .transpose()?,
            faults: parse_faults(&doc)?,
            targets: match doc.get("targets") {
                None => 1,
                Some(v) => v
                    .as_u64()
                    .filter(|&t| t >= 1)
                    .map(|t| t as usize)
                    .ok_or_else(|| format!("targets {v:?} not a positive integer"))?,
            },
            placement: parse_placement(&doc)?,
            migrations: parse_migrations(&doc)?,
            parallel: match doc.get("parallel") {
                None => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| format!("parallel {v:?} not a boolean"))?,
            },
        };
        // Duplicate seeds silently double-count a grid point: every
        // derived statistic (means, fairness spreads, campaign gates)
        // would be quietly biased toward the repeated run. Hard error.
        for (i, &s) in spec.seeds.iter().enumerate() {
            if spec.seeds[..i].contains(&s) {
                return Err(format!(
                    "duplicate seed {s} (each seed must appear once; \
                     repeated seeds double-count runs in derived statistics)"
                ));
            }
        }
        if !(spec.warmup_s >= 0.0 && spec.warmup_s.is_finite()) {
            return Err("warmup_s must be a finite non-negative number".to_string());
        }
        if !(spec.measure_s > 0.0 && spec.measure_s.is_finite()) {
            return Err("measure_s must be a finite positive number".to_string());
        }
        if spec.targets > 1 || !spec.migrations.is_empty() {
            // Cluster mode is NVMe-oPF only; fail the spec up front
            // rather than panicking mid-sweep.
            if spec.runtimes.contains(&RuntimeKind::Spdk) {
                return Err(
                    "cluster specs (targets > 1 or migration moves) require runtimes: [\"opf\"]"
                        .to_string(),
                );
            }
            for m in &spec.migrations {
                if m.to_target >= spec.targets {
                    return Err(format!(
                        "migration to_target {} out of range (targets = {})",
                        m.to_target, spec.targets
                    ));
                }
            }
        }
        Ok(spec)
    }

    /// Expand the cross product in its canonical order: runtime (outer)
    /// × speed × mix × ratio × seed (inner). Report points keep this
    /// index order regardless of which worker finishes first.
    pub fn expand(&self) -> Vec<(Point, Scenario)> {
        let mut out = Vec::new();
        for &runtime in &self.runtimes {
            for &speed in &self.speeds {
                for &mix in &self.mixes {
                    for &(ls, tc) in &self.ratios {
                        for &seed in &self.seeds {
                            let mut sc = Scenario::ratio(runtime, speed, mix, ls, tc);
                            sc.warmup_s = self.warmup_s;
                            sc.measure_s = self.measure_s;
                            sc.seed = seed;
                            sc.faults = self.faults.clone();
                            sc.targets = self.targets;
                            sc.placement = self.placement.clone();
                            sc.migrations = self.migrations.clone();
                            sc.parallel = self.parallel;
                            let point = Point {
                                runtime,
                                speed_gbps: match Speed::from(speed) {
                                    Speed::G10 => 10,
                                    Speed::G25 => 25,
                                    Speed::G100 => 100,
                                },
                                read_fraction: mix.read_fraction,
                                ls,
                                tc,
                                seed,
                            };
                            out.push((point, sc));
                        }
                    }
                }
            }
        }
        out
    }
}

/// Run every point of the spec (parallel fan-out, deterministic order).
pub fn run_spec(spec: &SweepSpec) -> Vec<(Point, RunResult)> {
    let expanded = spec.expand();
    let scenarios: Vec<Scenario> = expanded.iter().map(|(_, sc)| sc.clone()).collect();
    let results = experiments::sweep::run_all(&scenarios, spec.threads);
    expanded.into_iter().map(|(p, _)| p).zip(results).collect()
}

fn result_json(r: &RunResult) -> String {
    format!(
        concat!(
            "{{\"tc_iops\":{},\"tc_mb_s\":{},\"tc_avg_us\":{},\"tc_p9999_us\":{},",
            "\"ls_iops\":{},\"ls_avg_us\":{},\"ls_p9999_us\":{},",
            "\"notifications\":{},\"completed\":{},\"reactor_util\":{},\"events\":{}}}"
        ),
        format_f64(r.tc_iops),
        format_f64(r.tc_mb_s),
        format_f64(r.tc_avg_us),
        format_f64(r.tc_p9999_us),
        format_f64(r.ls_iops),
        format_f64(r.ls_avg_us),
        format_f64(r.ls_p9999_us),
        r.notifications,
        r.completed,
        format_f64(r.reactor_util),
        r.events,
    )
}

/// Render the `BENCH_<name>.json` document.
pub fn report_json(spec: &SweepSpec, points: &[(Point, RunResult)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"name\": \"{}\",\n  \"schema\": \"nvme-opf.sweep.v1\",\n",
        json::escape(&spec.name)
    ));
    out.push_str(&format!(
        "  \"warmup_s\": {},\n  \"measure_s\": {},\n",
        format_f64(spec.warmup_s),
        format_f64(spec.measure_s)
    ));
    out.push_str("  \"points\": [\n");
    for (i, (p, r)) in points.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"runtime\":\"{}\",\"speed_gbps\":{},\"mix\":\"{}\",",
                "\"read_fraction\":{},\"ls\":{},\"tc\":{},\"seed\":{},\n",
                "     \"result\":{},\n",
                "     \"snapshot\":{}}}{}\n"
            ),
            p.runtime_name(),
            p.speed_gbps,
            p.mix_name(),
            format_f64(p.read_fraction),
            p.ls,
            p.tc,
            p.seed,
            result_json(r),
            r.metrics.to_json(),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the flat CSV companion (scalar columns only; the full metric
/// snapshots live in the JSON report).
pub fn report_csv(points: &[(Point, RunResult)]) -> String {
    let mut out = String::from(
        "runtime,speed_gbps,mix,read_fraction,ls,tc,seed,\
         tc_iops,tc_mb_s,tc_avg_us,tc_p9999_us,\
         ls_iops,ls_avg_us,ls_p9999_us,\
         notifications,completed,reactor_util,events\n",
    );
    for (p, r) in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            p.runtime_name(),
            p.speed_gbps,
            p.mix_name(),
            format_f64(p.read_fraction),
            p.ls,
            p.tc,
            p.seed,
            format_f64(r.tc_iops),
            format_f64(r.tc_mb_s),
            format_f64(r.tc_avg_us),
            format_f64(r.tc_p9999_us),
            format_f64(r.ls_iops),
            format_f64(r.ls_avg_us),
            format_f64(r.ls_p9999_us),
            r.notifications,
            r.completed,
            format_f64(r.reactor_util),
            r.events,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"{
        "name": "tiny",
        "runtimes": ["opf"],
        "speeds": [100],
        "mixes": ["read"],
        "ratios": [[0, 1]],
        "seeds": [7],
        "warmup_s": 0.01,
        "measure_s": 0.03,
        "threads": 1
    }"#;

    #[test]
    fn spec_parses_with_defaults() {
        let spec = SweepSpec::from_json(r#"{"name": "d"}"#).unwrap();
        assert_eq!(spec.runtimes.len(), 2);
        assert_eq!(spec.speeds, vec![Gbps::G100]);
        assert_eq!(spec.ratios, vec![(1, 1)]);
        assert_eq!(spec.seeds, vec![42]);
        assert!(spec.threads.is_none());
        // 2 runtimes × 1 speed × 1 mix × 1 ratio × 1 seed.
        assert_eq!(spec.expand().len(), 2);
    }

    #[test]
    fn duplicate_seeds_are_a_hard_error() {
        let err = SweepSpec::from_json(r#"{"name": "d", "seeds": [7, 8, 7]}"#).unwrap_err();
        assert!(err.contains("duplicate seed 7"), "{err}");
        // Distinct seeds still parse.
        assert!(SweepSpec::from_json(r#"{"name": "d", "seeds": [7, 8]}"#).is_ok());
    }

    #[test]
    fn spec_rejects_bad_input() {
        assert!(SweepSpec::from_json("{}").is_err(), "name required");
        assert!(SweepSpec::from_json(r#"{"name": "a/b"}"#).is_err());
        assert!(SweepSpec::from_json(r#"{"name":"x","speeds":[40]}"#).is_err());
        assert!(SweepSpec::from_json(r#"{"name":"x","runtimes":[]}"#).is_err());
        assert!(SweepSpec::from_json(r#"{"name":"x","ratios":[[0,0]]}"#).is_err());
        assert!(SweepSpec::from_json(r#"{"name":"x","measure_s":0}"#).is_err());
        assert!(SweepSpec::from_json(r#"{"name":"x","threads":0}"#).is_err());
    }

    #[test]
    fn faults_block_parses_and_propagates() {
        let spec = SweepSpec::from_json(
            r#"{"name":"chaos","runtimes":["opf"],
                "faults":{"drop_p":0.01,"dup_p":0.002,
                          "retry_timeout_us":250,"retry_max":8,
                          "redrain_timeout_us":400,
                          "keepalive_us":4000,"kato_us":10000,
                          "settle_s":0.03,
                          "flaps":[{"link":0,"at_s":0.08,"for_s":0.015}],
                          "degrade":[{"at_s":0.1,"for_s":0.02,"factor":4.0}],
                          "crashes":[{"tenant":1,"at_s":0.1,"for_s":0.03}]}}"#,
        )
        .unwrap();
        let p = spec.faults.as_ref().unwrap();
        assert_eq!(p.drop_p, 0.01);
        assert_eq!(p.dup_p, 0.002);
        let r = p.retry.unwrap();
        assert_eq!(r.max_retries, 8);
        assert_eq!(r.timeout, SimDuration::from_micros(250));
        assert_eq!(p.redrain_timeout, Some(SimDuration::from_micros(400)));
        let ka = p.keepalive.unwrap();
        assert_eq!(ka.every, SimDuration::from_millis(4));
        assert_eq!(ka.kato, SimDuration::from_millis(10));
        assert_eq!(p.settle_s, 0.03);
        assert_eq!(p.flaps.len(), 1);
        assert_eq!(p.flaps[0].link, 0);
        assert_eq!(p.degrades[0].factor, 4.0);
        assert_eq!(p.crashes[0].tenant, 1);
        // The profile rides on every expanded scenario.
        let (_, sc) = &spec.expand()[0];
        assert_eq!(sc.faults.as_ref().unwrap().drop_p, 0.01);
    }

    #[test]
    fn adversary_block_parses_and_propagates() {
        let spec = SweepSpec::from_json(
            r#"{"name":"adv","runtimes":["opf"],
                "faults":{"drop_p":0.0,
                          "adversary":{"link":4,"forge_ls_p":0.5,
                                       "invalid_flags_p":0.1,"drain_flood_p":0.2,
                                       "replay_p":0.05,"spoof_p":0.3,
                                       "spoof_victim":2,"harden":false}}}"#,
        )
        .unwrap();
        let adv = spec.faults.as_ref().unwrap().adversary.unwrap();
        assert_eq!(adv.link, 4);
        assert_eq!(adv.forge_ls_p, 0.5);
        assert_eq!(adv.invalid_flags_p, 0.1);
        assert_eq!(adv.drain_flood_p, 0.2);
        assert_eq!(adv.replay_p, 0.05);
        assert_eq!(adv.spoof_p, 0.3);
        assert_eq!(adv.spoof_victim, 2);
        assert!(!adv.harden);
        // The adversary rides on every expanded scenario.
        let (_, sc) = &spec.expand()[0];
        assert_eq!(sc.faults.as_ref().unwrap().adversary, Some(adv));
        // Absent block leaves the plane honest; harden defaults to true.
        let plain = SweepSpec::from_json(r#"{"name":"x","faults":{"drop_p":0.01}}"#).unwrap();
        assert!(plain.faults.as_ref().unwrap().adversary.is_none());
        let min =
            SweepSpec::from_json(r#"{"name":"x","faults":{"adversary":{"link":1}}}"#).unwrap();
        assert!(min.faults.as_ref().unwrap().adversary.unwrap().harden);
    }

    #[test]
    fn adversary_block_rejects_bad_input() {
        for doc in [
            r#"{"name":"x","faults":{"adversary":{}}}"#,
            r#"{"name":"x","faults":{"adversary":{"link":0,"spoof_p":1.5}}}"#,
            r#"{"name":"x","faults":{"adversary":{"link":0,"spoof_victim":300}}}"#,
        ] {
            assert!(SweepSpec::from_json(doc).is_err(), "should reject: {doc}");
        }
    }

    #[test]
    fn faults_block_zero_timeouts_disable_recovery() {
        let spec = SweepSpec::from_json(
            r#"{"name":"x","faults":{"retry_timeout_us":0,"redrain_timeout_us":0}}"#,
        )
        .unwrap();
        let p = spec.faults.as_ref().unwrap();
        assert!(p.retry.is_none());
        assert!(p.redrain_timeout.is_none());
    }

    #[test]
    fn faults_block_rejects_bad_input() {
        assert!(SweepSpec::from_json(r#"{"name":"x","faults":{"drop_p":1.5}}"#).is_err());
        assert!(SweepSpec::from_json(r#"{"name":"x","faults":{"drop_p":"lots"}}"#).is_err());
        assert!(
            SweepSpec::from_json(r#"{"name":"x","faults":{"flaps":[{"at_s":0.1}]}}"#).is_err(),
            "flap without for_s"
        );
        assert!(
            SweepSpec::from_json(
                r#"{"name":"x","faults":{"degrade":[{"at_s":0,"for_s":1,"factor":0.5}]}}"#
            )
            .is_err(),
            "degrade factor below 1 would speed the link up"
        );
    }

    #[test]
    fn cluster_blocks_parse_and_propagate() {
        let spec = SweepSpec::from_json(
            r#"{"name":"cl","runtimes":["opf"],"targets":2,
                "placement":{"policy":"pinned","pins":[0,1,0]},
                "migration":{"moves":[{"tenant":1,"at_s":0.05,"to_target":0}]}}"#,
        )
        .unwrap();
        assert_eq!(spec.targets, 2);
        assert_eq!(spec.placement, PlacementSpec::Pinned(vec![0, 1, 0]));
        assert_eq!(
            spec.migrations,
            vec![MigrationSpec {
                tenant: 1,
                at_s: 0.05,
                to_target: 0
            }]
        );
        let (_, sc) = &spec.expand()[0];
        assert_eq!(sc.targets, 2);
        assert!(sc.is_cluster());
        // Defaults when absent: single target, round-robin, no moves.
        let plain = SweepSpec::from_json(r#"{"name":"x"}"#).unwrap();
        assert_eq!(plain.targets, 1);
        assert_eq!(plain.placement, PlacementSpec::RoundRobin);
        assert!(plain.migrations.is_empty());
        assert!(!plain.expand()[0].1.is_cluster());
    }

    #[test]
    fn parallel_knob_parses_and_propagates() {
        let spec = SweepSpec::from_json(r#"{"name":"p","parallel":true}"#).unwrap();
        assert!(spec.parallel);
        assert!(spec.expand().iter().all(|(_, sc)| sc.parallel));
        // Defaults off, so existing specs replay the direct path.
        let plain = SweepSpec::from_json(r#"{"name":"x"}"#).unwrap();
        assert!(!plain.parallel);
        assert!(!plain.expand()[0].1.parallel);
        assert!(
            SweepSpec::from_json(r#"{"name":"x","parallel":1}"#).is_err(),
            "parallel must be a boolean"
        );
    }

    #[test]
    fn cluster_blocks_reject_bad_input() {
        for (doc, why) in [
            (r#"{"name":"x","targets":0}"#, "zero targets"),
            (
                r#"{"name":"x","targets":2}"#,
                "cluster sweep defaults include the spdk runtime",
            ),
            (
                r#"{"name":"x","runtimes":["opf"],"targets":2,
                    "placement":{"policy":"round_robin","pins":[0]}}"#,
                "pins without pinned policy",
            ),
            (
                r#"{"name":"x","runtimes":["opf"],"targets":2,
                    "placement":{"policy":"wat"}}"#,
                "unknown policy",
            ),
            (
                r#"{"name":"x","runtimes":["opf"],"targets":2,
                    "placement":{"policy":"round_robin","typo":1}}"#,
                "unknown placement key",
            ),
            (
                r#"{"name":"x","runtimes":["opf"],"targets":2,
                    "migration":{"moves":[],"typo":1}}"#,
                "unknown migration key",
            ),
            (
                r#"{"name":"x","runtimes":["opf"],"targets":2,
                    "migration":{"moves":[{"tenant":1,"at_s":0.05,"to_target":0,"typo":1}]}}"#,
                "unknown move key",
            ),
            (
                r#"{"name":"x","runtimes":["opf"],"targets":2,
                    "migration":{"moves":[{"tenant":1,"at_s":0.05,"to_target":5}]}}"#,
                "to_target out of range",
            ),
            (
                r#"{"name":"x","runtimes":["opf"],"targets":2,
                    "migration":{"moves":[{"tenant":1,"at_s":-0.1,"to_target":0}]}}"#,
                "negative at_s",
            ),
        ] {
            assert!(
                SweepSpec::from_json(doc).is_err(),
                "should reject {why}: {doc}"
            );
        }
    }

    #[test]
    fn expansion_order_is_canonical() {
        let spec = SweepSpec::from_json(
            r#"{"name":"x","runtimes":["spdk","opf"],"speeds":[10,100],"seeds":[1,2]}"#,
        )
        .unwrap();
        let points: Vec<Point> = spec.expand().into_iter().map(|(p, _)| p).collect();
        assert_eq!(points.len(), 8);
        // runtime is the outermost axis, seed the innermost.
        assert_eq!(points[0].runtime, RuntimeKind::Spdk);
        assert_eq!((points[0].speed_gbps, points[0].seed), (10, 1));
        assert_eq!((points[1].speed_gbps, points[1].seed), (10, 2));
        assert_eq!((points[2].speed_gbps, points[2].seed), (100, 1));
        assert_eq!(points[4].runtime, RuntimeKind::Opf);
    }

    #[test]
    fn report_is_bit_identical_across_runs() {
        let spec = SweepSpec::from_json(TINY).unwrap();
        let a = run_spec(&spec);
        let b = run_spec(&spec);
        let ja = report_json(&spec, &a);
        let jb = report_json(&spec, &b);
        assert_eq!(ja, jb, "same spec + seeds must serialize identically");
        assert_eq!(report_csv(&a), report_csv(&b));
        // And the report parses back as valid JSON.
        let doc = json::parse(&ja).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("tiny"));
        let pts = doc.get("points").unwrap().as_arr().unwrap();
        assert_eq!(pts.len(), 1);
        let snap = pts[0].get("snapshot").unwrap();
        assert!(snap.get("metrics").unwrap().get("tc.iops").is_some());
        assert!(
            pts[0]
                .get("result")
                .unwrap()
                .get("tc_iops")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn parallel_fanout_matches_serial() {
        let mut spec = SweepSpec::from_json(
            r#"{"name":"par","runtimes":["opf"],"ratios":[[0,1]],
                "seeds":[1,2,3,4],"warmup_s":0.01,"measure_s":0.02}"#,
        )
        .unwrap();
        spec.threads = Some(1);
        let serial = run_spec(&spec);
        spec.threads = Some(4);
        let parallel = run_spec(&spec);
        assert_eq!(report_json(&spec, &serial), report_json(&spec, &parallel));
    }
}
