//! End-to-end FSM acceptance: the exact matrix the CI `fsm-check` job
//! gates on, plus the emit → parse → replay loop a developer follows
//! when a counterexample lands in CI output.

use analysis::fsm::{check, replay, scenario, Action, Config, Outcome, Violation};

#[test]
fn hardened_matrix_is_clean_and_unhardened_reproduces_pr6() {
    // Hardened: forged-LS witness and the full adversary must explore
    // without violations and actually reach goal states.
    for cfg in [
        Config::forged_ls_witness(true),
        Config::full_adversary_hardened(),
    ] {
        match check(&cfg) {
            Outcome::Clean { states, terminals } => {
                assert!(states > 0 && terminals > 0, "{cfg:?}: {states}/{terminals}");
            }
            Outcome::Violated(cx) => panic!("{cfg:?} must be clean, got {cx:?}"),
        }
    }

    // Unhardened: the PR 6 forged-LS CID-queue overflow must be
    // re-found — this is the regression witness that ties the model to
    // the code it abstracts.
    let cfg = Config::forged_ls_witness(false);
    let cx = check(&cfg).counterexample().cloned().expect("must violate");
    assert_eq!(cx.violation, Violation::CidQueueOverflow);
}

#[test]
fn counterexample_schedule_walks_the_forged_ls_path() {
    let cfg = Config::forged_ls_witness(false);
    let cx = check(&cfg).counterexample().cloned().unwrap();
    // The schedule must issue, forge, and deliver — a violation that
    // skipped the adversary would mean the model breaks without it.
    assert!(cx.schedule.contains(&Action::Issue));
    assert!(cx.schedule.iter().any(|a| matches!(a, Action::ForgeLs(_))));
    assert!(cx
        .schedule
        .iter()
        .any(|a| matches!(a, Action::DeliverResp(_))));
    // The final action is the overflowing Issue.
    assert_eq!(cx.schedule.last(), Some(&Action::Issue));
}

#[test]
fn emitted_scenario_replays_from_disk_roundtrip() {
    let cfg = Config::forged_ls_witness(false);
    let cx = check(&cfg).counterexample().cloned().unwrap();
    let text = scenario::emit(&cfg, &cx);

    // A developer pastes the CI-emitted JSON into a file and replays it.
    let (parsed_cfg, parsed_cx) = scenario::parse(&text).expect("scenario parses");
    assert_eq!(parsed_cfg, cfg);
    assert_eq!(
        replay(&parsed_cfg, &parsed_cx.schedule),
        Ok(Some(Violation::CidQueueOverflow))
    );

    // The same schedule against the hardened config must NOT reproduce:
    // hardening is exactly what the witness demonstrates. (It may
    // complete cleanly or diverge once the routing changes the state.)
    let hardened = Config::forged_ls_witness(true);
    if let Ok(Some(v)) = replay(&hardened, &parsed_cx.schedule) {
        panic!("hardened replay must not violate, got {v}");
    }
}
