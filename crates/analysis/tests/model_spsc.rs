//! Exhaustive model checks of the real `queues::spsc` ring (built
//! against the shadow types via `--features model`).
//!
//! Test pattern: a *bounded* concurrent probing phase (the consumer
//! attempts a fixed number of pops while the producer runs) followed by
//! join + drain. The probe explores every push/pop interleaving —
//! including pops racing the publish — while keeping every schedule
//! terminating (unbounded spin loops would never finish under a
//! depth-first scheduler that can starve one side).

use analysis::model::{self, thread, ModelError};
use queues::spsc::{spsc_channel, spsc_channel_weak};
use std::sync::atomic::Ordering;

#[test]
fn concurrent_push_pop_delivers_in_order() {
    let report = model::check(|| {
        let (mut tx, mut rx) = spsc_channel::<u32>(2);
        let producer = thread::spawn(move || {
            tx.push(10).unwrap();
            tx.push(20).unwrap();
        });
        let mut got = Vec::new();
        // Bounded concurrent probe: pops race the two pushes.
        for _ in 0..2 {
            if let Some(v) = rx.pop() {
                got.push(v);
            }
        }
        producer.join().unwrap();
        while let Some(v) = rx.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![10, 20], "FIFO order on every interleaving");
    });
    // The probe either sees nothing, one, or both values depending on
    // the schedule — far more than one path.
    assert!(
        report.executions > 10,
        "got {} executions",
        report.executions
    );
}

#[test]
fn full_boundary_rejects_and_recovers() {
    model::check(|| {
        let (mut tx, mut rx) = spsc_channel::<u32>(2);
        // Fill to capacity on the root thread: the ring is now full.
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        let producer = thread::spawn(move || {
            // Full → rejected, or accepted if the concurrent pop already
            // freed a slot and we observed it (cached head refresh).
            let mut accepted = 0u32;
            if tx.push(3).is_ok() {
                accepted += 1;
            }
            if tx.push(4).is_ok() {
                accepted += 1;
            }
            (tx, accepted)
        });
        let first = rx.pop();
        assert_eq!(first, Some(1), "head of a full ring is always 1");
        let (mut tx, accepted) = producer.join().unwrap();
        let mut rest = Vec::new();
        while let Some(v) = rx.pop() {
            rest.push(v);
        }
        // Everything accepted must come out, in order, nothing lost.
        // (Which of 3/4 got in depends on when the pop freed a slot —
        // e.g. 3 rejected while full, then 4 accepted — but order and
        // count are invariant.)
        assert_eq!(rest.len(), 1 + accepted as usize, "rest = {rest:?}");
        assert_eq!(rest[0], 2);
        assert!(rest.windows(2).all(|w| w[0] < w[1]), "order in {rest:?}");
        assert!(rest.iter().all(|v| [2, 3, 4].contains(v)));
        // After draining, a full round-trip works again.
        tx.push(9).unwrap();
        assert_eq!(rx.pop(), Some(9));
    });
}

#[test]
fn wraparound_reuses_slots_safely() {
    model::check(|| {
        let (mut tx, mut rx) = spsc_channel::<u32>(2);
        // Advance both indices past the mask boundary sequentially so the
        // concurrent episode below runs on reused slots.
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        let producer = thread::spawn(move || {
            // These writes reuse slots 0 and 1; the full-check path must
            // acquire the consumer's head before overwriting.
            tx.push(3).unwrap();
            tx.push(4).unwrap();
        });
        let mut got = Vec::new();
        if let Some(v) = rx.pop() {
            got.push(v);
        }
        producer.join().unwrap();
        while let Some(v) = rx.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![3, 4]);
    });
}

#[test]
fn relaxed_publish_is_caught() {
    // The negative control demanded by ISSUE.md: the identical ring code
    // with the publish store downgraded to Relaxed must produce a data
    // race on the slot handoff — proving the checker actually guards the
    // ordering and the Release in production code is load-bearing.
    let failure = model::try_check(|| {
        let (mut tx, mut rx) = spsc_channel_weak::<u32>(2, Ordering::Relaxed);
        let producer = thread::spawn(move || {
            tx.push(7).unwrap();
        });
        // Bounded probe: on schedules where the pop observes the relaxed
        // index store, the slot read has no happens-before edge back to
        // the producer's write.
        let _ = rx.pop();
        producer.join().unwrap();
    })
    .expect_err("relaxed publish must be reported as a race");
    assert!(
        matches!(failure.error, ModelError::DataRace { .. }),
        "expected a data race, got: {failure}"
    );
}
