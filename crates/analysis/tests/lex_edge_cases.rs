//! Lexer edge cases through the public lint API: each case is a shape
//! the old line-splitting engine got wrong or could only approximate,
//! asserted here end-to-end (source → tokens → rule verdict).

use analysis::lex::{lex, test_spans, TokKind};
use analysis::lint::lint_source;
use std::path::Path;

fn lint(rel: &str, src: &str) -> Vec<analysis::lint::Finding> {
    lint_source(Path::new(rel), src)
}

#[test]
fn nested_block_comments_do_not_leak_into_code() {
    // The inner `*/` must not close the outer comment and expose
    // `.unwrap()` as code.
    let src = "/* outer /* inner */ still comment .unwrap() */\nfn f() {}\n";
    assert!(lint("crates/core/src/x.rs", src).is_empty());
    let toks = lex(src);
    assert_eq!(
        toks.iter()
            .filter(|t| t.kind == TokKind::BlockComment)
            .count(),
        1
    );
}

#[test]
fn raw_string_with_embedded_line_comment_is_all_literal() {
    // `//` inside r#"…"# is string content: the `.unwrap()` after it on
    // the same line is real code and must be flagged.
    let src = "fn f(o: Option<u8>) -> u8 {\n    let _p = r#\"path // not a comment\"#;\n    o.unwrap()\n}\n";
    let f = lint("crates/core/src/x.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "no-panic");
    assert_eq!(f[0].line, 3);
}

#[test]
fn quote_char_literal_does_not_open_a_string() {
    // `'"'` must lex as a char literal; if it opened a string, the
    // `.unwrap()` after it would vanish into literal content.
    let src = "fn f(c: char, o: Option<u8>) -> u8 { if c == '\"' { o.unwrap() } else { 0 } }\n";
    let f = lint("crates/core/src/x.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "no-panic");
}

#[test]
fn cfg_test_inner_module_scopes_precisely() {
    // A cfg(test) module in the *middle* of a file exempts only its own
    // span: the old first-match-to-EOF heuristic exempted everything
    // after it, hiding the second unwrap.
    let src = "\
#[cfg(test)]
mod early_tests {
    #[test]
    fn t(o: Option<u8>) { o.unwrap(); }
}

fn production(o: Option<u8>) -> u8 { o.unwrap() }
";
    let f = lint("crates/core/src/x.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].line, 7);

    let spans = test_spans(src, &lex(src));
    assert_eq!(spans.len(), 1);
    assert!(src[spans[0].clone()].contains("early_tests"));
    assert!(!src[spans[0].clone()].contains("production"));
}

#[test]
fn waiver_inside_string_literal_is_inert() {
    // The satellite's acceptance case: a string literal spelling the
    // waiver syntax must not waive anything (the old engine matched
    // waivers by substring over loosely-split lines).
    let src = "fn f(o: Option<u8>) -> u8 {\n    let _doc = \"waive with lint: allow(no-panic) like so\";\n    o.unwrap()\n}\n";
    let f = lint("crates/core/src/x.rs", src);
    assert_eq!(f.len(), 1, "waiver-in-string must not waive: {f:?}");
    assert_eq!(f[0].line, 3);
}

#[test]
fn every_ported_rule_still_fires() {
    // One minimal positive case per rule: a port that silently stopped
    // matching would pass the clean-workspace test while enforcing
    // nothing.
    let cases: &[(&str, &str, &str)] = &[
        (
            "atomic-ordering",
            "crates/queues/src/x.rs",
            "fn f(a: &AtomicUsize) { a.load(Ordering::SeqCst); }\n",
        ),
        (
            "no-panic",
            "crates/nvmf/src/x.rs",
            "fn f() { panic!(\"boom\"); }\n",
        ),
        (
            "no-threading",
            "crates/workload/src/x.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
        ),
        (
            "wall-clock",
            "crates/experiments/src/x.rs",
            "fn f() { let _ = std::time::SystemTime::now(); }\n",
        ),
        (
            "foreign-rand",
            "crates/workload/src/x.rs",
            "fn f() -> u64 { rand::random() }\n",
        ),
        (
            "no-payload-to_vec",
            "crates/fabric/src/x.rs",
            "fn f(b: &[u8]) -> Vec<u8> { b.to_vec() }\n",
        ),
        (
            "safety-comment",
            "crates/queues/src/x.rs",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        ),
        (
            "hashmap-iter",
            "crates/core/src/x.rs",
            "struct S { m: HashMap<u8, u8> }\nimpl S { fn f(&self) -> usize { self.m.iter().count() } }\n",
        ),
    ];
    for (rule, rel, src) in cases {
        let f = lint(rel, src);
        assert!(
            f.iter().any(|x| x.rule == *rule),
            "rule {rule} no longer fires on {rel}: {f:?}"
        );
    }
}
