//! The workspace must lint clean: this is the same check CI runs via
//! `cargo run -p analysis --bin lint`, wired into `cargo test` so a
//! violation fails the ordinary test suite too.

use std::path::PathBuf;

#[test]
fn workspace_has_no_lint_violations() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("analysis crate lives two levels under the workspace root")
        .to_path_buf();
    let findings = analysis::lint::lint_workspace(&root);
    assert!(
        findings.is_empty(),
        "workspace lint violations:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
