//! Exhaustive model checks of the real `queues::mpsc` Vyukov queue
//! (built against the shadow types via `--features model`).
//!
//! Every execution also doubles as a node-leak proof: the queue sources
//! register each node allocation/free with the model's allocation
//! tracker, and the checker fails any interleaving that ends with a
//! live node — covering the stub and unconsumed tail on *all* paths,
//! not just the ones a unit test happens to hit.

use analysis::model::{self, thread, ModelError};
use queues::mpsc::{channel, channel_weak, MpscQueue};
use std::sync::atomic::Ordering;

#[test]
fn two_producers_swing_tail_without_loss() {
    let report = model::check(|| {
        let (tx, mut rx) = channel::<u32>();
        let tx2 = tx.clone();
        // Two producers race the tail swap; the window between a swap and
        // the link store is the scheme's classic hazard.
        let a = thread::spawn(move || {
            tx.send(1);
            tx.send(2);
        });
        let b = thread::spawn(move || {
            tx2.send(10);
        });
        a.join().unwrap();
        b.join().unwrap();
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        // No loss, no duplicates, per-producer FIFO.
        assert_eq!(got.len(), 3);
        let pos = |x: u32| got.iter().position(|&v| v == x).unwrap();
        assert!(pos(1) < pos(2), "producer A's order preserved in {got:?}");
        assert!(got.contains(&10));
    });
    assert!(
        report.executions > 10,
        "got {} executions",
        report.executions
    );
}

#[test]
fn concurrent_push_pop_through_channel() {
    model::check(|| {
        let (tx, mut rx) = channel::<u32>();
        let producer = thread::spawn(move || {
            tx.send(5);
            tx.send(6);
        });
        let mut got = Vec::new();
        // Bounded probe racing the pushes: exercises pops that observe a
        // swapped-but-not-yet-linked tail (the "momentarily broken" state).
        for _ in 0..2 {
            if let Some(v) = rx.recv() {
                got.push(v);
            }
        }
        producer.join().unwrap();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got, vec![5, 6]);
    });
}

#[test]
fn unconsumed_tail_and_stub_are_freed() {
    // Drop with values still queued, on every interleaving of the
    // producers: the allocation tracker fails the execution if any node
    // (stub included) is still live when the episode ends.
    model::check(|| {
        let q = std::sync::Arc::new(MpscQueue::<u32>::new());
        let q2 = q.clone();
        let producer = thread::spawn(move || {
            q2.push(1);
            q2.push(2);
        });
        producer.join().unwrap();
        let mut q = std::sync::Arc::try_unwrap(q).ok().unwrap();
        assert_eq!(q.pop(), Some(1));
        // Drop `q` with one value unconsumed.
    });
}

#[test]
fn relaxed_link_is_caught() {
    // Negative control: the same queue code with the producer's link
    // store downgraded to Relaxed must race — the consumer can reach the
    // node without a happens-before edge back to its initialization.
    let failure = model::try_check(|| {
        let (tx, mut rx) = channel_weak::<u32>(Ordering::Relaxed);
        let producer = thread::spawn(move || {
            tx.send(7);
        });
        let _ = rx.recv();
        producer.join().unwrap();
        while rx.recv().is_some() {}
    })
    .expect_err("relaxed link store must be reported as a race");
    assert!(
        matches!(failure.error, ModelError::DataRace { .. }),
        "expected a data race, got: {failure}"
    );
}
