//! Exhaustive model checks of the conservative-lookahead lane mesh
//! (`queues::lane`), the synchronization structure under the threaded
//! simulation engine (`simkit::ParallelKernel`, DESIGN.md §17).
//!
//! Four properties carry the parallel merge:
//!
//! 1. *Belled delivery*: a message sent through the mesh reaches its
//!    peer exactly once across every interleaving of sends, bound
//!    publications and drains.
//! 2. *Bound observed ⇒ batch visible*: the sender bells its messages
//!    **before** publishing its bound (Release), and the receiver reads
//!    peer bounds with Acquire — so any message at or under an observed
//!    bound is already drainable. This is the edge that makes the
//!    worker's "read horizon once, then drain" window sound.
//! 3. *Quiescence is stable*: the `idle == lanes ∧ inflight == 0`
//!    triple-read can never report quiescent while a message sits
//!    undrained in a mailbox, because `inflight` is raised before the
//!    post and only lowered at the take.
//! 4. *Negative control*: weakening the bound publication to `Relaxed`
//!    (via `lane_mesh_weak`) severs the happens-before edge of
//!    property 2, and the checker reports the cross-lane data race —
//!    proving the production `Release` is load-bearing, not ceremony.

use analysis::model::{self, thread, ModelError, UnsafeCell};
use queues::lane::{lane_mesh, lane_mesh_weak};
use std::sync::atomic::Ordering;
use std::sync::Arc;

#[test]
fn mesh_messages_deliver_exactly_once() {
    let report = model::check(|| {
        let mut ports = lane_mesh::<u32>(2, 4);
        let mut p1 = ports.pop().unwrap();
        let mut p0 = ports.pop().unwrap();
        let sender = thread::spawn(move || {
            p0.send(1, 11).unwrap();
            p0.send(1, 22).unwrap();
            p0.publish(10);
            p0
        });
        // Concurrent probe: whatever the schedule, drains only surface
        // belled messages, each exactly once.
        let mut got = Vec::new();
        p1.drain(|from, v| got.push((from, v)));
        let p0 = sender.join().unwrap();
        p1.drain(|from, v| got.push((from, v)));
        assert_eq!(got, vec![(0, 11), (0, 22)], "exactly once, in order");
        assert_eq!(p1.pending(), 0);
        drop(p0);
    });
    assert!(
        report.executions > 10,
        "got {} executions",
        report.executions
    );
}

#[test]
fn observed_bound_means_the_batch_is_drainable() {
    model::check(|| {
        let mut ports = lane_mesh::<u32>(2, 4);
        let mut p1 = ports.pop().unwrap();
        let mut p0 = ports.pop().unwrap();
        let sender = thread::spawn(move || {
            p0.send(1, 7).unwrap();
            p0.publish(10);
            p0
        });
        // Property 2, exactly as the worker loop uses it: one Acquire
        // read of the peer bound, then a drain. If the bound moved, the
        // message belled before it must already be visible.
        let bound = p1.bound_of(0);
        let mut got = Vec::new();
        p1.drain(|_, v| got.push(v));
        if bound >= 10 {
            assert_eq!(got, vec![7], "bound observed but belled batch missing");
        }
        let p0 = sender.join().unwrap();
        p1.drain(|_, v| got.push(v));
        assert_eq!(got, vec![7]);
        drop(p0);
    });
}

#[test]
fn quiescence_never_reports_with_an_undrained_message() {
    model::check(|| {
        let mut ports = lane_mesh::<u32>(2, 4);
        let mut p1 = ports.pop().unwrap();
        let mut p0 = ports.pop().unwrap();
        let sender = thread::spawn(move || {
            // Send, then go idle — legal: `inflight` (raised before the
            // post) covers the message until its receiver drains it.
            p0.send(1, 9).unwrap();
            p0.enter_idle();
            p0
        });
        p1.enter_idle();
        // Property 3: seeing `idle == 2` happens-after the sender's
        // enter_idle, which happens-after its inflight increment — so
        // the inflight read cannot miss the undrained message.
        assert!(
            !p1.quiescent(),
            "false quiescence with an undrained message"
        );
        let p0 = sender.join().unwrap();
        p1.exit_idle();
        let mut got = 0;
        p1.drain(|_, v| {
            assert_eq!(v, 9);
            got += 1;
        });
        assert_eq!(got, 1);
        p1.enter_idle();
        assert!(p1.quiescent(), "drained, all idle: must be quiescent");
        drop(p0);
    });
}

#[test]
fn published_bound_carries_cross_lane_state() {
    // The engine's actual dependency: a lane executes events up to the
    // horizon it read, touching state its peers wrote before they
    // published. The bound publication must therefore carry a full
    // publication edge on its own.
    let report = model::check(|| {
        let mut ports = lane_mesh::<u32>(2, 4);
        let p1 = ports.pop().unwrap();
        let mut p0 = ports.pop().unwrap();
        let state = Arc::new(UnsafeCell::new(0u64));
        let s0 = state.clone();
        let writer = thread::spawn(move || {
            // SAFETY: exclusive shadow-cell write; the checker verifies
            // every interleaving orders it against the reads below.
            s0.with_mut(|p| unsafe { *p = 42 });
            p0.publish(10);
            p0
        });
        if p1.bound_of(0) >= 10 {
            // SAFETY: read under the observed bound — the Release
            // publication orders it after the writer's store.
            let v = state.with(|p| unsafe { *p });
            assert_eq!(v, 42, "bound observed but peer state stale");
        }
        let p0 = writer.join().unwrap();
        // SAFETY: the join orders this read after the writer exits.
        assert_eq!(state.with(|p| unsafe { *p }), 42);
        drop((p0, p1));
    });
    assert!(
        report.executions > 2,
        "got {} executions",
        report.executions
    );
}

#[test]
fn relaxed_bound_publication_is_caught() {
    // Property 4: identical code to the test above, one ordering
    // weaker. A `Relaxed` bound store still updates the value, but no
    // longer publishes the writer's clock — reading peer state under
    // the observed bound is now a data race, which is exactly what
    // would bite on hardware as a stale cross-lane read.
    let failure = model::try_check(|| {
        let mut ports = lane_mesh_weak::<u32>(2, 4, Ordering::Relaxed);
        let p1 = ports.pop().unwrap();
        let mut p0 = ports.pop().unwrap();
        let state = Arc::new(UnsafeCell::new(0u64));
        let s0 = state.clone();
        let writer = thread::spawn(move || {
            // SAFETY: same exclusive shadow-cell write as above.
            s0.with_mut(|p| unsafe { *p = 42 });
            p0.publish(10);
            p0
        });
        if p1.bound_of(0) >= 10 {
            // SAFETY: deliberately unsynchronized — the Relaxed bound
            // gives no edge, and the checker must flag this read.
            let _ = state.with(|p| unsafe { *p });
        }
        let p0 = writer.join().unwrap();
        drop((p0, p1));
    })
    .expect_err("relaxed bound publication must be reported");
    assert!(
        matches!(failure.error, ModelError::DataRace { .. }),
        "expected a data race, got: {failure}"
    );
}
