//! Exhaustive model checks of the cross-shard mailbox
//! (`queues::mailbox`): the SPSC ring plus the batch doorbell that the
//! multi-reactor target uses for admin and device-submission handoffs
//! (DESIGN.md §13).
//!
//! Three properties carry the protocol:
//!
//! 1. *Slot handoff*: posted values reach the consumer exactly once, in
//!    order, across every interleaving of pushes, bells and drains.
//! 2. *Batch visibility*: the doorbell's `Release` store (after the
//!    pushes) paired with `pending()`'s `Acquire` load is by itself a
//!    full publication edge for the batch — checked by weakening the
//!    ring's own publication to `Relaxed` and showing the mailbox stays
//!    race-free on the bell edge alone (the amortized-fence design).
//! 3. *Negative control*: weakening the bell too removes the last
//!    happens-before edge, and the checker reports the slot data race —
//!    proving the `Release` in production code is load-bearing, not
//!    ceremony.

use analysis::model::{self, thread, ModelError};
use queues::mailbox::{mailbox, mailbox_weak};
use std::sync::atomic::Ordering;

#[test]
fn batched_handoff_delivers_exactly_once_in_order() {
    let report = model::check(|| {
        let (mut tx, mut rx) = mailbox::<u32>(4);
        let producer = thread::spawn(move || {
            // Two batches: one belled mid-stream, one at the end — the
            // consumer's probe races both the pushes and the bells.
            tx.post(1).unwrap();
            tx.ring();
            tx.post(2).unwrap();
            tx.post(3).unwrap();
            tx.ring();
        });
        let mut got = Vec::new();
        // Bounded concurrent probe; `take` must only surface belled
        // items, and every belled item must pop without spinning.
        for _ in 0..2 {
            let n = rx.pending();
            for _ in 0..n {
                got.push(rx.take().expect("belled items pop immediately"));
            }
        }
        producer.join().unwrap();
        while let Some(v) = rx.take() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2, 3], "exactly once, in order");
        assert_eq!(rx.taken(), 3);
    });
    assert!(
        report.executions > 10,
        "got {} executions",
        report.executions
    );
}

#[test]
fn unbelled_batch_stays_invisible_across_interleavings() {
    model::check(|| {
        let (mut tx, mut rx) = mailbox::<u32>(4);
        let producer = thread::spawn(move || {
            tx.post(7).unwrap();
            // Deliberately never belled before the probe: the value may
            // sit published in the ring, but the batch contract hides it.
            tx
        });
        // On every schedule — including ones where the push completed —
        // the consumer sees nothing until the bell rings.
        assert_eq!(rx.pending(), 0);
        assert_eq!(rx.take(), None);
        let mut tx = producer.join().unwrap();
        tx.ring();
        assert_eq!(rx.take(), Some(7));
    });
}

#[test]
fn bell_release_alone_publishes_the_batch() {
    // Property #2: downgrade the ring's index publication to Relaxed
    // but keep the bell's Release. The bell store happens after every
    // push of the batch, and the consumer only touches slots after its
    // Acquire load of the bell reports them — so the bell edge alone
    // carries the happens-before for the whole batch and the run is
    // race-free. This is the amortized-fence design the mailbox exists
    // for: one publication per batch, not one per item.
    let report = model::check(|| {
        let (mut tx, mut rx) = mailbox_weak::<u32>(4, Ordering::Relaxed, Ordering::Release);
        let producer = thread::spawn(move || {
            tx.post(1).unwrap();
            tx.post(2).unwrap();
            tx.ring();
        });
        let mut got = Vec::new();
        let n = rx.pending();
        for _ in 0..n {
            got.push(rx.take().expect("belled items pop immediately"));
        }
        producer.join().unwrap();
        while let Some(v) = rx.take() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2]);
    });
    assert!(
        report.executions > 5,
        "got {} executions",
        report.executions
    );
}

#[test]
fn relaxed_bell_over_weak_ring_is_caught() {
    // Property #3, the negative control demanded by ISSUE.md: with the
    // ring already weakened, also downgrading the bell removes the last
    // Release/Acquire pair between the producer's slot write and the
    // consumer's slot read. Contrast with the test above — identical
    // code, one ordering weaker — proving the bell's Release is exactly
    // what the checker (and the hardware) rely on.
    let failure = model::try_check(|| {
        let (mut tx, mut rx) = mailbox_weak::<u32>(4, Ordering::Relaxed, Ordering::Relaxed);
        let producer = thread::spawn(move || {
            tx.send(9).unwrap();
        });
        let _ = rx.take();
        producer.join().unwrap();
    })
    .expect_err("fully relaxed mailbox must be reported");
    assert!(
        matches!(failure.error, ModelError::DataRace { .. }),
        "expected a data race, got: {failure}"
    );
}
