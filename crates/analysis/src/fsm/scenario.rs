//! Replayable counterexample scenarios.
//!
//! A counterexample from [`super::check`] serializes to a small JSON
//! document — the bounded configuration plus the action schedule — so a
//! violation found in CI can be checked in, diffed, and replayed
//! locally with `cargo run -p analysis --bin fsm -- --replay <file>`.
//! The format is emitted and parsed here with no dependencies (the
//! parser handles exactly the JSON subset the emitter produces, plus
//! whitespace and string escapes).

use super::{Action, Config, Counterexample, Violation};
use std::collections::BTreeMap;

/// Serialize a counterexample with the configuration that produced it.
pub fn emit(cfg: &Config, cx: &Counterexample) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"violation\": \"{}\",\n", cx.violation));
    out.push_str("  \"config\": {\n");
    out.push_str(&format!("    \"qd\": {},\n", cfg.qd));
    out.push_str(&format!("    \"window\": {},\n", cfg.window));
    out.push_str(&format!("    \"max_cmds\": {},\n", cfg.max_cmds));
    out.push_str(&format!("    \"net_cap\": {},\n", cfg.net_cap));
    out.push_str(&format!("    \"forge_ls\": {},\n", cfg.forge_ls));
    out.push_str(&format!("    \"drop\": {},\n", cfg.drop));
    out.push_str(&format!("    \"dup\": {},\n", cfg.dup));
    out.push_str(&format!("    \"replay\": {},\n", cfg.replay));
    out.push_str(&format!("    \"hardened\": {}\n", cfg.hardened));
    out.push_str("  },\n");
    out.push_str("  \"schedule\": [\n");
    for (i, a) in cx.schedule.iter().enumerate() {
        let comma = if i + 1 == cx.schedule.len() { "" } else { "," };
        out.push_str(&format!("    \"{}\"{comma}\n", action_str(*a)));
    }
    out.push_str("  ]\n}\n");
    out
}

fn action_str(a: Action) -> String {
    match a {
        Action::Issue => "issue".into(),
        Action::DeliverCmd(i) => format!("deliver-cmd {i}"),
        Action::DeliverResp(i) => format!("deliver-resp {i}"),
        Action::Expire(c) => format!("expire {c}"),
        Action::ForgeLs(i) => format!("forge-ls {i}"),
        Action::DropMsg(i) => format!("drop {i}"),
        Action::DupMsg(i) => format!("dup {i}"),
        Action::StashMsg(i) => format!("stash {i}"),
        Action::ReplayStash => "replay-stash".into(),
    }
}

fn parse_action(s: &str) -> Result<Action, String> {
    let (verb, arg) = match s.split_once(' ') {
        Some((v, a)) => (v, Some(a)),
        None => (s, None),
    };
    let num = |a: Option<&str>| -> Result<usize, String> {
        a.ok_or_else(|| format!("action `{s}`: missing operand"))?
            .parse()
            .map_err(|_| format!("action `{s}`: bad operand"))
    };
    Ok(match verb {
        "issue" => Action::Issue,
        "deliver-cmd" => Action::DeliverCmd(num(arg)?),
        "deliver-resp" => Action::DeliverResp(num(arg)?),
        "expire" => Action::Expire(num(arg)? as u16),
        "forge-ls" => Action::ForgeLs(num(arg)?),
        "drop" => Action::DropMsg(num(arg)?),
        "dup" => Action::DupMsg(num(arg)?),
        "stash" => Action::StashMsg(num(arg)?),
        "replay-stash" => Action::ReplayStash,
        _ => return Err(format!("unknown action `{s}`")),
    })
}

/// Minimal JSON value for the scenario subset.
#[derive(Debug, Clone)]
enum Json {
    Obj(BTreeMap<String, Json>),
    Arr(Vec<Json>),
    Str(String),
    Num(i64),
    Bool(bool),
}

struct Parser<'s> {
    b: &'s [u8],
    i: usize,
}

impl<'s> Parser<'s> {
    fn ws(&mut self) {
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.obj(),
            Some(b'[') => self.arr(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') | Some(b'f') => self.boolean(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn obj(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("bad object at byte {}", self.i)),
            }
        }
    }

    fn arr(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("bad array at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    let esc = self.b.get(self.i + 1).copied();
                    s.push(match esc {
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(c) => c as char,
                        None => return Err("unterminated escape".into()),
                    });
                    self.i += 2;
                }
                Some(&c) => {
                    s.push(c as char);
                    self.i += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn boolean(&mut self) -> Result<Json, String> {
        if self.b[self.i..].starts_with(b"true") {
            self.i += 4;
            Ok(Json::Bool(true))
        } else if self.b[self.i..].starts_with(b"false") {
            self.i += 5;
            Ok(Json::Bool(false))
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

fn get<'j>(obj: &'j BTreeMap<String, Json>, key: &str) -> Result<&'j Json, String> {
    obj.get(key).ok_or_else(|| format!("missing key `{key}`"))
}

fn as_usize(j: &Json, key: &str) -> Result<usize, String> {
    match j {
        Json::Num(n) if *n >= 0 => Ok(*n as usize),
        _ => Err(format!("`{key}` must be a non-negative integer")),
    }
}

fn as_bool(j: &Json, key: &str) -> Result<bool, String> {
    match j {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("`{key}` must be a bool")),
    }
}

/// Parse a scenario document back into its configuration and
/// counterexample.
pub fn parse(text: &str) -> Result<(Config, Counterexample), String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let Json::Obj(root) = p.value()? else {
        return Err("scenario root must be an object".into());
    };
    let Json::Obj(c) = get(&root, "config")? else {
        return Err("`config` must be an object".into());
    };
    let cfg = Config {
        qd: as_usize(get(c, "qd")?, "qd")?,
        window: as_usize(get(c, "window")?, "window")?,
        max_cmds: as_usize(get(c, "max_cmds")?, "max_cmds")?,
        net_cap: as_usize(get(c, "net_cap")?, "net_cap")?,
        forge_ls: as_bool(get(c, "forge_ls")?, "forge_ls")?,
        drop: as_bool(get(c, "drop")?, "drop")?,
        dup: as_bool(get(c, "dup")?, "dup")?,
        replay: as_bool(get(c, "replay")?, "replay")?,
        hardened: as_bool(get(c, "hardened")?, "hardened")?,
    };
    let violation = match get(&root, "violation")? {
        Json::Str(s) => match s.as_str() {
            "cid-queue-overflow" => Violation::CidQueueOverflow,
            "double-completion" => Violation::DoubleCompletion,
            "deadlock" => Violation::Deadlock,
            other => return Err(format!("unknown violation `{other}`")),
        },
        _ => return Err("`violation` must be a string".into()),
    };
    let Json::Arr(sched) = get(&root, "schedule")? else {
        return Err("`schedule` must be an array".into());
    };
    let mut schedule = Vec::with_capacity(sched.len());
    for item in sched {
        let Json::Str(s) = item else {
            return Err("schedule entries must be strings".into());
        };
        schedule.push(parse_action(s)?);
    }
    Ok((
        cfg,
        Counterexample {
            violation,
            schedule,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::{check, replay};

    #[test]
    fn counterexample_round_trips_and_replays() {
        let cfg = Config::forged_ls_witness(false);
        let cx = check(&cfg)
            .counterexample()
            .expect("witness config must violate")
            .clone();
        let text = emit(&cfg, &cx);
        let (cfg2, cx2) = parse(&text).expect("emitted scenario must parse");
        assert_eq!(cfg, cfg2);
        assert_eq!(cx.schedule, cx2.schedule);
        assert_eq!(cx.violation, cx2.violation);
        assert_eq!(replay(&cfg2, &cx2.schedule), Ok(Some(cx.violation)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("[]").is_err());
        assert!(parse("{\"violation\": \"nope\"}").is_err());
        assert!(parse_action("fly-me-to-the-moon 3").is_err());
    }

    #[test]
    fn all_actions_round_trip_as_strings() {
        for a in [
            Action::Issue,
            Action::DeliverCmd(7),
            Action::DeliverResp(0),
            Action::Expire(3),
            Action::ForgeLs(1),
            Action::DropMsg(2),
            Action::DupMsg(4),
            Action::StashMsg(5),
            Action::ReplayStash,
        ] {
            assert_eq!(parse_action(&action_str(a)).unwrap(), a);
        }
    }
}
