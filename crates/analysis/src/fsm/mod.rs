//! Explicit-state model checker for the CID lifecycle.
//!
//! A small, exact model of the protocol plane's command-identifier
//! lifecycle: initiator slot epochs (`core::initiator::RetrySlot`), the
//! TC completion queue (`queues::cid::CidQueue` with capacity
//! `qd + window`), the target's recovery live-set keyed by
//! `(cid, epoch)`, and an adversary that can drop, duplicate, replay,
//! and forge the LS class flag on in-flight capsules (PR 6's
//! `faults::Adversary`). The checker DFS-explores every interleaving of
//! a bounded configuration, memoizing canonical states, and asserts:
//!
//! * **exactly-once** — no command is ever completed twice;
//! * **no reachable panic** — the CID queue never exceeds its
//!   `qd + window` capacity (the real initiator `expect`s on that push,
//!   so an overflow state *is* a reachable panic);
//! * **no deadlock** — from every reachable state where work remains,
//!   some transition is enabled.
//!
//! With `hardened: false` the initiator routes completions by the class
//! echoed in the response — exactly the pre-PR 6 code — and the checker
//! re-finds the forged-LS CID-queue overflow as a regression witness.
//! With `hardened: true` it routes by the locally recorded class
//! (`ProtocolError::RespClassMismatch` in `core::initiator::on_resp`)
//! and the bounded state space is proven clean. Counterexamples are
//! action schedules, replayable via [`replay`] and serializable as
//! scenario JSON via [`scenario`].

pub mod scenario;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Bounded model configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Config {
    /// Initiator queue depth: number of CID slots.
    pub qd: usize,
    /// Drain window: extra CID-queue capacity beyond `qd` (the real
    /// `CidQueue` is sized `qd + window`).
    pub window: usize,
    /// Total commands the workload issues before stopping.
    pub max_cmds: usize,
    /// Bound on concurrently in-flight fabric messages.
    pub net_cap: usize,
    /// Adversary may flip the LS class flag on an in-flight command.
    pub forge_ls: bool,
    /// Adversary may drop any in-flight message.
    pub drop: bool,
    /// Adversary may duplicate any in-flight message.
    pub dup: bool,
    /// Adversary may stash a command capsule and replay it later
    /// (cross-epoch replay once the CID recycles).
    pub replay: bool,
    /// Initiator routes completions by its locally recorded class
    /// (PR 6 hardening) instead of trusting the response's echo.
    pub hardened: bool,
}

impl Config {
    /// The PR 6 regression witness: smallest configuration in which a
    /// forged-LS response strands CID-queue entries until the queue
    /// overflows its `qd + window` capacity. `hardened: false` here is
    /// the pre-PR 6 initiator.
    pub fn forged_ls_witness(hardened: bool) -> Config {
        Config {
            qd: 1,
            window: 1,
            max_cmds: 3,
            net_cap: 2,
            forge_ls: true,
            drop: false,
            dup: false,
            replay: false,
            hardened,
        }
    }

    /// Full adversary (drop/dup/replay/forge) against a hardened
    /// initiator — the configuration the parallel kernel must survive.
    pub fn full_adversary_hardened() -> Config {
        Config {
            qd: 2,
            window: 1,
            max_cmds: 3,
            net_cap: 3,
            forge_ls: true,
            drop: true,
            dup: true,
            replay: true,
            hardened: true,
        }
    }

    fn cid_cap(&self) -> usize {
        self.qd + self.window
    }
}

/// An in-flight fabric message.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Msg {
    /// Command capsule: slot `cid` at incarnation `epoch`, carrying
    /// workload command `cmd`. `forged_ls` is the adversary's flipped
    /// class flag (every honest command in the model is TC).
    Cmd {
        cid: u16,
        epoch: u32,
        cmd: usize,
        forged_ls: bool,
    },
    /// Response capsule, echoing the class the target saw.
    Resp {
        cid: u16,
        epoch: u32,
        cmd: usize,
        ls_echo: bool,
    },
}

/// One transition. `usize` operands index into the in-flight message
/// vector at the moment the action fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Action {
    /// Initiator issues the next command on the lowest free slot.
    Issue,
    /// Target consumes in-flight command `i` and responds.
    DeliverCmd(usize),
    /// Initiator consumes in-flight response `i`.
    DeliverResp(usize),
    /// Retry watchdog re-sends the command for slot `cid` (enabled only
    /// when nothing for that incarnation is in flight).
    Expire(u16),
    /// Adversary flips the LS flag on in-flight command `i`.
    ForgeLs(usize),
    /// Adversary drops in-flight message `i`.
    DropMsg(usize),
    /// Adversary duplicates in-flight message `i`.
    DupMsg(usize),
    /// Adversary stashes a copy of in-flight command `i`.
    StashMsg(usize),
    /// Adversary injects the stashed command back into the fabric.
    ReplayStash,
}

/// Initiator slot state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Slot {
    Free,
    /// Command `cmd` in flight at incarnation `epoch`.
    Inflight {
        epoch: u32,
        cmd: usize,
    },
}

/// Canonical model state (Ord so the DFS can memoize in a BTreeSet —
/// deterministic iteration, no hashing).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    issued: usize,
    slots: Vec<Slot>,
    /// TC completion queue: (cid, epoch, cmd) in issue order. The real
    /// structure holds CIDs only; the model tags entries so exactly-once
    /// can be asserted per command.
    cid_queue: Vec<(u16, u32, usize)>,
    net: Vec<Msg>,
    /// Target recovery live-set: (cid, epoch) → (cmd, ls_echo) of the
    /// response already sent, resent verbatim on duplicate delivery.
    live: BTreeMap<(u16, u32), (usize, bool)>,
    stash: Option<Msg>,
    /// Completion count per command id.
    completed: Vec<u8>,
}

impl State {
    fn init(cfg: &Config) -> State {
        State {
            issued: 0,
            slots: vec![Slot::Free; cfg.qd],
            cid_queue: Vec::new(),
            net: Vec::new(),
            live: BTreeMap::new(),
            stash: None,
            completed: vec![0; cfg.max_cmds],
        }
    }

    fn goal_met(&self, cfg: &Config) -> bool {
        self.issued == cfg.max_cmds && self.completed.iter().all(|&c| c == 1)
    }
}

/// A violated model assertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The CID queue exceeded `qd + window` — the real initiator panics
    /// here (`cid_queue.push(cid).expect(...)` in `core::initiator`).
    CidQueueOverflow,
    /// A command completed more than once.
    DoubleCompletion,
    /// Work remains but no transition is enabled.
    Deadlock,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Violation::CidQueueOverflow => "cid-queue-overflow",
            Violation::DoubleCompletion => "double-completion",
            Violation::Deadlock => "deadlock",
        })
    }
}

/// A violation plus the action schedule that reaches it from the
/// initial state.
#[derive(Clone, Debug)]
pub struct Counterexample {
    pub violation: Violation,
    pub schedule: Vec<Action>,
}

/// Result of exploring a configuration.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Every reachable state is clean; counts are distinct states
    /// visited and terminal (goal-met, quiescent) states among them.
    Clean {
        states: usize,
        terminals: usize,
    },
    Violated(Counterexample),
}

impl Outcome {
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Outcome::Clean { .. } => None,
            Outcome::Violated(cx) => Some(cx),
        }
    }
}

/// Every action enabled in `s`. Order is deterministic (system actions
/// first), so counterexamples are stable across runs.
fn enabled(cfg: &Config, s: &State) -> Vec<Action> {
    let mut acts = Vec::new();
    if s.issued < cfg.max_cmds && s.slots.contains(&Slot::Free) && s.net.len() < cfg.net_cap {
        acts.push(Action::Issue);
    }
    for (i, m) in s.net.iter().enumerate() {
        match m {
            Msg::Cmd { .. } => acts.push(Action::DeliverCmd(i)),
            Msg::Resp { .. } => acts.push(Action::DeliverResp(i)),
        }
    }
    // Retry: a slot whose incarnation has nothing in flight may re-send.
    // Only enabled when the adversary can actually lose messages;
    // otherwise it only blows up the state space.
    if cfg.drop {
        for (cid, sl) in s.slots.iter().enumerate() {
            if let Slot::Inflight { epoch, .. } = sl {
                let in_flight = s.net.iter().any(|m| match m {
                    Msg::Cmd {
                        cid: c, epoch: e, ..
                    }
                    | Msg::Resp {
                        cid: c, epoch: e, ..
                    } => *c == cid as u16 && e == epoch,
                });
                if !in_flight && s.net.len() < cfg.net_cap {
                    acts.push(Action::Expire(cid as u16));
                }
            }
        }
    }
    for (i, m) in s.net.iter().enumerate() {
        if cfg.forge_ls {
            if let Msg::Cmd {
                forged_ls: false, ..
            } = m
            {
                acts.push(Action::ForgeLs(i));
            }
        }
        if cfg.drop {
            acts.push(Action::DropMsg(i));
        }
        if cfg.dup && s.net.len() < cfg.net_cap {
            acts.push(Action::DupMsg(i));
        }
        if cfg.replay && s.stash.is_none() {
            if let Msg::Cmd { .. } = m {
                acts.push(Action::StashMsg(i));
            }
        }
    }
    if cfg.replay && s.stash.is_some() && s.net.len() < cfg.net_cap {
        acts.push(Action::ReplayStash);
    }
    acts
}

/// Apply `a` to `s`. Returns the successor state, or the violation the
/// action exposes.
fn step(cfg: &Config, s: &State, a: Action) -> Result<State, Violation> {
    let mut n = s.clone();
    match a {
        Action::Issue => {
            let cid = n
                .slots
                .iter()
                .position(|sl| *sl == Slot::Free)
                .unwrap_or_default() as u16;
            // Fresh incarnation: one past any epoch the target has seen
            // for this slot (the real slot counter survives recycling).
            let epoch = 1 + n
                .live
                .keys()
                .filter(|(c, _)| *c == cid)
                .map(|(_, e)| *e)
                .max()
                .unwrap_or(0);
            let cmd = n.issued;
            n.issued += 1;
            n.slots[cid as usize] = Slot::Inflight { epoch, cmd };
            // The real initiator pushes the TC CID with
            // `.expect("CID queue sized for QD + window")` — a full
            // queue here is a reachable panic, i.e. a violation.
            if n.cid_queue.len() == cfg.cid_cap() {
                return Err(Violation::CidQueueOverflow);
            }
            n.cid_queue.push((cid, epoch, cmd));
            n.net.push(Msg::Cmd {
                cid,
                epoch,
                cmd,
                forged_ls: false,
            });
        }
        Action::DeliverCmd(i) => {
            let Msg::Cmd {
                cid,
                epoch,
                cmd,
                forged_ls,
            } = n.net.remove(i)
            else {
                return Ok(n);
            };
            let (resp_cmd, ls_echo) = match n.live.get(&(cid, epoch)) {
                // Duplicate (retransmit or replay): the live-set
                // suppresses re-execution but resends the recorded
                // response so a lost completion can still recover.
                Some(&prev) => prev,
                None => {
                    // The target echoes the class it saw on the wire.
                    n.live.insert((cid, epoch), (cmd, forged_ls));
                    (cmd, forged_ls)
                }
            };
            n.net.push(Msg::Resp {
                cid,
                epoch,
                cmd: resp_cmd,
                ls_echo,
            });
        }
        Action::DeliverResp(i) => {
            let Msg::Resp {
                cid,
                epoch,
                ls_echo,
                ..
            } = n.net.remove(i)
            else {
                return Ok(n);
            };
            let Slot::Inflight {
                epoch: slot_epoch,
                cmd: slot_cmd,
            } = n.slots[cid as usize]
            else {
                return Ok(n); // slot free: stale/duplicate, suppressed
            };
            if slot_epoch != epoch {
                return Ok(n); // epoch guard: cross-incarnation replay
            }
            // PR 6's fix: the hardened initiator ignores the echoed
            // class and routes by what it recorded at submit (always TC
            // here). The unhardened one trusts the wire.
            let ls_path = if cfg.hardened { false } else { ls_echo };
            if ls_path {
                // LS bypass completion: slot done, CID queue untouched —
                // this is what strands TC queue entries.
                n.slots[cid as usize] = Slot::Free;
                bump(&mut n, slot_cmd)?;
            } else {
                // TC path: complete *through* this entry, coalescing
                // everything queued before it (`complete_through_into`).
                let Some(pos) = n
                    .cid_queue
                    .iter()
                    .position(|&(c, e, _)| c == cid && e == epoch)
                else {
                    return Ok(n); // Missing: counted protocol error
                };
                let drained: Vec<_> = n.cid_queue.drain(..=pos).collect();
                for (c, e, queued_cmd) in drained {
                    if let Slot::Inflight { epoch: se, .. } = n.slots[c as usize] {
                        if se == e {
                            n.slots[c as usize] = Slot::Free;
                            bump(&mut n, queued_cmd)?;
                        }
                    }
                }
            }
        }
        Action::Expire(cid) => {
            if let Slot::Inflight { epoch, cmd } = n.slots[cid as usize] {
                n.net.push(Msg::Cmd {
                    cid,
                    epoch,
                    cmd,
                    forged_ls: false,
                });
            }
        }
        Action::ForgeLs(i) => {
            if let Some(Msg::Cmd { forged_ls, .. }) = n.net.get_mut(i) {
                *forged_ls = true;
            }
        }
        Action::DropMsg(i) => {
            n.net.remove(i);
        }
        Action::DupMsg(i) => {
            let m = n.net[i].clone();
            n.net.push(m);
        }
        Action::StashMsg(i) => {
            n.stash = Some(n.net[i].clone());
        }
        Action::ReplayStash => {
            if let Some(m) = n.stash.clone() {
                n.net.push(m);
            }
        }
    }
    // Canonicalize: in-flight message order is not observable (delivery
    // picks an arbitrary index), so sort to collapse permutations.
    n.net.sort();
    Ok(n)
}

fn bump(s: &mut State, cmd: usize) -> Result<(), Violation> {
    s.completed[cmd] += 1;
    if s.completed[cmd] > 1 {
        return Err(Violation::DoubleCompletion);
    }
    Ok(())
}

/// Exhaustively explore `cfg` from the initial state.
pub fn check(cfg: &Config) -> Outcome {
    let mut seen: BTreeSet<State> = BTreeSet::new();
    let mut terminals = 0usize;
    let mut stack: Vec<(State, Vec<Action>)> = vec![(State::init(cfg), Vec::new())];
    while let Some((s, trace)) = stack.pop() {
        if !seen.insert(s.clone()) {
            continue;
        }
        let acts = enabled(cfg, &s);
        if acts.is_empty() {
            if s.goal_met(cfg) {
                terminals += 1;
                continue;
            }
            return Outcome::Violated(Counterexample {
                violation: Violation::Deadlock,
                schedule: trace,
            });
        }
        for a in acts {
            match step(cfg, &s, a) {
                Ok(next) => {
                    if !seen.contains(&next) {
                        let mut t = trace.clone();
                        t.push(a);
                        stack.push((next, t));
                    }
                }
                Err(violation) => {
                    let mut schedule = trace;
                    schedule.push(a);
                    return Outcome::Violated(Counterexample {
                        violation,
                        schedule,
                    });
                }
            }
        }
    }
    Outcome::Clean {
        states: seen.len(),
        terminals,
    }
}

/// Replay errors: the schedule no longer matches the configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// Action `index` in the schedule was not enabled in the state the
    /// prefix reached.
    NotEnabled { index: usize, action: Action },
}

/// Re-run a recorded schedule against `cfg`. Returns the violation the
/// schedule triggers (`None` if it completes cleanly), or a
/// [`ReplayError`] if the schedule has diverged from the model.
pub fn replay(cfg: &Config, schedule: &[Action]) -> Result<Option<Violation>, ReplayError> {
    let mut s = State::init(cfg);
    for (index, &action) in schedule.iter().enumerate() {
        if !enabled(cfg, &s).contains(&action) {
            return Err(ReplayError::NotEnabled { index, action });
        }
        match step(cfg, &s, action) {
            Ok(next) => s = next,
            Err(v) => return Ok(Some(v)),
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unhardened_forged_ls_overflows_cid_queue() {
        let cfg = Config::forged_ls_witness(false);
        let out = check(&cfg);
        let cx = out
            .counterexample()
            .expect("pre-PR6 initiator must reach the CID-queue overflow");
        assert_eq!(cx.violation, Violation::CidQueueOverflow);
        // The witness replays to the same violation.
        assert_eq!(
            replay(&cfg, &cx.schedule),
            Ok(Some(Violation::CidQueueOverflow))
        );
        // And the schedule really exercises the forged-LS path.
        assert!(cx.schedule.iter().any(|a| matches!(a, Action::ForgeLs(_))));
    }

    #[test]
    fn hardened_forged_ls_is_clean() {
        match check(&Config::forged_ls_witness(true)) {
            Outcome::Clean { states, terminals } => {
                assert!(states > 10, "exploration actually happened: {states}");
                assert!(terminals > 0, "goal state reached");
            }
            Outcome::Violated(cx) => panic!("hardened model must be clean: {cx:?}"),
        }
    }

    #[test]
    fn honest_unhardened_is_clean() {
        // The violation needs the adversary: with forging off, the
        // pre-PR6 initiator is correct in this model.
        let mut cfg = Config::forged_ls_witness(false);
        cfg.forge_ls = false;
        assert!(check(&cfg).counterexample().is_none());
    }

    #[test]
    fn full_adversary_hardened_is_clean() {
        match check(&Config::full_adversary_hardened()) {
            Outcome::Clean { states, terminals } => {
                assert!(states > 100, "{states}");
                assert!(terminals > 0);
            }
            Outcome::Violated(cx) => panic!("hardened full-adversary run must be clean: {cx:?}"),
        }
    }

    #[test]
    fn replay_rejects_diverged_schedule() {
        let cfg = Config::forged_ls_witness(false);
        let bad = [Action::DeliverCmd(0)]; // nothing in flight yet
        assert!(matches!(
            replay(&cfg, &bad),
            Err(ReplayError::NotEnabled { index: 0, .. })
        ));
    }
}
