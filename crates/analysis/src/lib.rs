//! # analysis — in-repo verification tooling for the NVMe-oPF workspace
//!
//! The paper's lock-free design (§IV-A: independent per-initiator TC
//! queues) lives in `crates/queues`, the only `unsafe` code in the
//! workspace. This crate machine-checks it, plus the workspace-wide
//! invariants the simulator's determinism depends on:
//!
//! * [`model`] — a vendored mini-loom: an exhaustive-interleaving
//!   explorer with shadow `Atomic*`/`UnsafeCell` types that track
//!   happens-before edges with vector clocks and flag data races,
//!   missing Acquire/Release edges, and leaked nodes. The real queue
//!   sources build against it through `queues`' `model` feature.
//! * [`lint`] — a repo-specific source linter (run as
//!   `cargo run -p analysis --bin lint`) enforcing rules no off-the-shelf
//!   tool knows about: ordering discipline in `queues`, no panics on
//!   protocol hot paths, virtual-time purity outside `simkit`, no
//!   `HashMap` iteration on output-affecting paths, and `// SAFETY:`
//!   comments on every `unsafe` site.
//!
//! Everything here is offline and dependency-free by construction: the
//! build container has no crates.io access, so the tooling is vendored.

pub mod fsm;
pub mod lex;
pub mod lint;
pub mod model;
