//! A vendored, dependency-free Rust lexer for the workspace linter.
//!
//! The lint rules in [`crate::lint`] used to run on per-line
//! comment-stripped text, which cannot tell a waiver comment from a
//! string literal that merely *mentions* one, and pairs `SAFETY`
//! comments to `unsafe` blocks by line distance. This module turns a
//! source file into a flat [`Tok`] stream with byte spans and line
//! numbers so the rules can match real tokens:
//!
//! * nested block comments (`/* /* */ */` stays one comment token);
//! * raw strings (`r#"…"#` with any hash count, `//` inside is content);
//! * byte strings and raw byte strings (`b"…"`, `br#"…"#`);
//! * char literals vs lifetimes (`'"'` is a char, `'a` in `&'a str` is
//!   a lifetime, `'\u{1F600}'` is a char);
//! * raw identifiers (`r#match` is one identifier, not a raw string);
//! * numeric literals with digit-group underscores and type suffixes.
//!
//! It is a *lexer*, not a parser: there is no AST. The one structural
//! pass layered on top is [`test_spans`], which brace-matches
//! `#[cfg(test)]`-attributed items so lint rules can scope precisely to
//! the attributed item instead of the old "first `cfg(test)` to
//! end-of-file" heuristic — code *after* a `#[cfg(test)] mod tests {}`
//! block is production code again.

use std::ops::Range;

/// Token class. String/char variants carry no decoded value — the lint
/// rules only ever need to know that a span *is* literal content so it
/// can be excluded from code matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `r#raw` identifiers).
    Ident,
    /// `'lifetime` (including `'static`, `'_`).
    Lifetime,
    /// `'c'`, `'\n'`, `'\u{…}'`, or `b'c'`.
    CharLit,
    /// `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` — all string shapes.
    StrLit,
    /// Integer or float literal, suffix included (`6_364u64`, `1.5e3`).
    NumLit,
    /// `// …` to end of line (plain, `///` doc, `//!` inner doc).
    LineComment,
    /// `/* … */`, nesting tracked; may span lines. Doc forms included.
    BlockComment,
    /// Any other single character of punctuation/operators.
    Punct,
}

impl TokKind {
    /// True for the two comment kinds.
    pub fn is_comment(self) -> bool {
        matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// One token: kind, byte span into the source, and 1-based line of its
/// first byte.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub span: Range<usize>,
    pub line: usize,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.span.clone()]
    }
}

/// Lex `src` into a token stream. Never fails: unterminated literals
/// and comments are closed at end of input, so the linter degrades
/// gracefully on mid-edit files.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    bytes: &'s [u8],
    pos: usize,
    line: usize,
    out: Vec<Tok>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advance `n` bytes, counting newlines.
    fn bump(&mut self, n: usize) {
        for i in 0..n {
            if self.bytes.get(self.pos + i) == Some(&b'\n') {
                self.line += 1;
            }
        }
        self.pos += n;
    }

    fn push(&mut self, kind: TokKind, start: usize, start_line: usize) {
        self.out.push(Tok {
            kind,
            span: start..self.pos,
            line: start_line,
        });
    }

    fn run(mut self) -> Vec<Tok> {
        // A shebang line (`#!/usr/bin/env …`) is not Rust; skip it. An
        // inner attribute `#![…]` is Rust and must not be skipped.
        if self.bytes.starts_with(b"#!") && self.peek(2) != Some(b'[') {
            while self.peek(0).is_some_and(|b| b != b'\n') {
                self.bump(1);
            }
        }
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let start_line = self.line;
            match b {
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.peek(0).is_some_and(|c| c != b'\n') {
                        self.bump(1);
                    }
                    self.push(TokKind::LineComment, start, start_line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.bump(2);
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(0), self.peek(1)) {
                            (Some(b'/'), Some(b'*')) => {
                                depth += 1;
                                self.bump(2);
                            }
                            (Some(b'*'), Some(b'/')) => {
                                depth -= 1;
                                self.bump(2);
                            }
                            (Some(_), _) => self.bump(1),
                            (None, _) => break, // unterminated: close at EOF
                        }
                    }
                    self.push(TokKind::BlockComment, start, start_line);
                }
                b'"' => {
                    self.string(false);
                    self.push(TokKind::StrLit, start, start_line);
                }
                b'\'' => self.quote(start, start_line),
                b'r' | b'b' if self.raw_or_byte_literal(start, start_line) => {}
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                    self.ident();
                    self.push(TokKind::Ident, start, start_line);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokKind::NumLit, start, start_line);
                }
                c if c.is_ascii_whitespace() => self.bump(1),
                _ => {
                    self.bump(1);
                    self.push(TokKind::Punct, start, start_line);
                }
            }
        }
        self.out
    }

    /// Consume an identifier body (first char already validated).
    fn ident(&mut self) {
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
        {
            self.bump(1);
        }
    }

    /// Consume a numeric literal: digits, `_`, radix prefixes, a float
    /// part, an exponent, and any alphanumeric type suffix. Precision on
    /// the literal grammar is unnecessary — the linter only needs the
    /// span to cohere (e.g. `6_364_136u64` is one token).
    fn number(&mut self) {
        self.bump(1);
        while let Some(c) = self.peek(0) {
            if c == b'_' || c.is_ascii_alphanumeric() {
                self.bump(1);
            } else if c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the literal; `1.method()` does not.
                self.bump(1);
            } else if (c == b'+' || c == b'-')
                && matches!(self.bytes.get(self.pos - 1), Some(b'e') | Some(b'E'))
            {
                // Exponent sign: `1e-3`.
                self.bump(1);
            } else {
                break;
            }
        }
    }

    /// At a `'`: char literal or lifetime?
    ///
    /// `'x'` / `'\…'` → char literal. `'ident` not followed by a closing
    /// quote → lifetime. The decisive test for the unescaped form is
    /// whether the *second* character after the quote closes it: `'a'`
    /// is a char, `'a,` is a lifetime, `'"'` is a char (a quote cannot
    /// start a lifetime).
    fn quote(&mut self, start: usize, start_line: usize) {
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: scan to the closing quote.
                self.bump(2); // ' and backslash
                self.bump(1); // the escaped character itself
                while let Some(c) = self.peek(0) {
                    if c == b'\'' {
                        self.bump(1);
                        break;
                    }
                    if c == b'\n' {
                        break; // malformed; don't eat the file
                    }
                    self.bump(1);
                }
                self.push(TokKind::CharLit, start, start_line);
            }
            Some(c) if c != b'\'' && self.peek(2) == Some(b'\'') && !ident_start(c) => {
                // `'"'`, `'('` … — a single non-identifier char closed by
                // a quote is always a char literal.
                self.bump(3);
                self.push(TokKind::CharLit, start, start_line);
            }
            Some(c) if ident_start(c) => {
                // `'a'` char vs `'a` lifetime: look one past the char.
                if self.peek(2) == Some(b'\'') && !ident_continue(self.peek(3)) {
                    // `'a'` followed by a non-identifier: char literal.
                    // (`'a'b` cannot occur; `'static'` is not Rust.)
                    self.bump(3);
                    self.push(TokKind::CharLit, start, start_line);
                } else {
                    self.bump(1);
                    self.ident();
                    self.push(TokKind::Lifetime, start, start_line);
                }
            }
            _ => {
                // Lone quote (malformed) — emit as punct and move on.
                self.bump(1);
                self.push(TokKind::Punct, start, start_line);
            }
        }
    }

    /// At `r` or `b`: raw string (`r"…"`, `r#"…"#`), byte string
    /// (`b"…"`, `br#"…"#`), byte char (`b'x'`), or raw identifier
    /// (`r#ident`). Returns true if a token was consumed; false means
    /// "just an identifier starting with r/b" and the caller falls
    /// through to ident handling.
    fn raw_or_byte_literal(&mut self, start: usize, start_line: usize) -> bool {
        let b0 = self.peek(0).unwrap();
        // b'x' byte char literal: step over the prefix and let the char
        // path take it; the span passed down still covers the `b`.
        if b0 == b'b' && self.peek(1) == Some(b'\'') {
            self.bump(1);
            self.quote(start, start_line);
            return true;
        }
        // Candidate prefix: optional b/r ordering is `r`, `b`, `br`, `rb`
        // (only `r`, `b`, `br` are real Rust; accept `rb` defensively).
        let mut j = 0usize;
        let mut saw_r = false;
        while let Some(c) = self.peek(j) {
            match c {
                b'r' if j < 2 => {
                    saw_r = true;
                    j += 1;
                }
                b'b' if j < 2 => j += 1,
                _ => break,
            }
        }
        let mut hashes = 0usize;
        while self.peek(j + hashes) == Some(b'#') {
            hashes += 1;
        }
        let at_quote = self.peek(j + hashes) == Some(b'"');
        if at_quote && (saw_r || hashes == 0) {
            // r"…", r#"…"#, b"…", br#"…"# — a raw/byte string. A plain
            // `b#"` (no r) is not a string; require r for hashed forms.
            if hashes > 0 && !saw_r {
                return false;
            }
            self.bump(j + hashes + 1); // prefix, hashes, opening quote
            if saw_r {
                self.raw_string_body(hashes);
            } else {
                self.string_body();
            }
            self.push(TokKind::StrLit, start, start_line);
            return true;
        }
        // r#ident raw identifier.
        if saw_r && hashes == 1 && self.peek(j + 1).is_some_and(ident_start) {
            self.bump(j + 1);
            self.ident();
            self.push(TokKind::Ident, start, start_line);
            return true;
        }
        false
    }

    /// Consume a plain (escaped) string after its opening quote,
    /// including the closing quote.
    fn string(&mut self, _raw: bool) {
        self.bump(1); // opening quote
        self.string_body();
    }

    fn string_body(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.bump(2), // escape: skip the escaped byte
                b'"' => {
                    self.bump(1);
                    return;
                }
                _ => self.bump(1),
            }
        }
    }

    /// Consume a raw string body after its opening quote: ends at the
    /// first `"` followed by `hashes` `#`s. No escapes.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.peek(0) {
            if c == b'"' {
                let closes = (0..hashes).all(|k| self.peek(1 + k) == Some(b'#'));
                if closes {
                    self.bump(1 + hashes);
                    return;
                }
            }
            self.bump(1);
        }
    }
}

fn ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic() || c >= 0x80
}

fn ident_continue(c: Option<u8>) -> bool {
    c.is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
}

/// Byte ranges of `#[cfg(test)]`-attributed items, brace-matched.
///
/// Walks the code tokens; on an attribute whose content mentions the
/// `test` cfg (`#[cfg(test)]`, `#[cfg(all(test, …))]`), the following
/// item — after any further attributes — is consumed to its closing
/// brace (or terminating `;` for `mod name;` / `use …;` forms) and its
/// full span recorded. Nested items are naturally covered by the brace
/// count. Used by the linter's `is_test` scoping.
pub fn test_spans(src: &str, toks: &[Tok]) -> Vec<Range<usize>> {
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !toks[i].kind.is_comment())
        .collect();
    let mut spans = Vec::new();
    let mut ci = 0usize;
    while ci < code.len() {
        let i = code[ci];
        if toks[i].text(src) != "#" {
            ci += 1;
            continue;
        }
        // Parse one attribute: `#[ … ]` (or `#![ … ]`).
        let mut aj = ci + 1;
        if aj < code.len() && toks[code[aj]].text(src) == "!" {
            aj += 1; // inner attribute — never attaches to a next item
        }
        if aj >= code.len() || toks[code[aj]].text(src) != "[" {
            ci += 1;
            continue;
        }
        let attr_start = toks[i].span.start;
        let inner = toks[code[aj]].text(src) == "[" && aj != ci + 1;
        // Scan to the matching `]`, noting whether this is cfg(test).
        let mut depth = 0usize;
        let mut k = aj;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while k < code.len() {
            let t = toks[code[k]].text(src);
            match t {
                "[" | "(" => depth += 1,
                "]" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "cfg" => saw_cfg = true,
                "test" if saw_cfg => saw_test = true,
                _ => {}
            }
            k += 1;
        }
        if k >= code.len() {
            break; // unterminated attribute
        }
        if !saw_cfg || !saw_test || inner {
            ci = k + 1;
            continue;
        }
        // `#[cfg(test)]` found: skip further attributes, then consume
        // the item to its end.
        let mut m = k + 1;
        while m + 1 < code.len()
            && toks[code[m]].text(src) == "#"
            && toks[code[m + 1]].text(src) == "["
        {
            let mut d = 0usize;
            let mut n = m + 1;
            while n < code.len() {
                match toks[code[n]].text(src) {
                    "[" | "(" => d += 1,
                    "]" | ")" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                n += 1;
            }
            m = n + 1;
        }
        // Find the item end: first `;` at depth 0, or the brace block.
        let mut d = 0usize;
        let mut end = None;
        let mut n = m;
        while n < code.len() {
            match toks[code[n]].text(src) {
                "{" => d += 1,
                "}" => {
                    d = d.saturating_sub(1);
                    if d == 0 {
                        end = Some(toks[code[n]].span.end);
                        break;
                    }
                }
                ";" if d == 0 => {
                    end = Some(toks[code[n]].span.end);
                    break;
                }
                _ => {}
            }
            n += 1;
        }
        let end = end.unwrap_or(src.len());
        spans.push(attr_start..end);
        // Continue scanning after the item (a later sibling may also be
        // cfg(test)-gated).
        while ci < code.len() && toks[code[ci]].span.start < end {
            ci += 1;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let src = "a /* x /* y */ z */ b";
        let k = kinds(src);
        assert_eq!(k.len(), 3);
        assert_eq!(k[1], (TokKind::BlockComment, "/* x /* y */ z */".into()));
        assert_eq!(k[2].1, "b");
    }

    #[test]
    fn raw_string_with_line_comment_inside() {
        let src = r##"let s = r#"// not a comment"#;"##;
        let k = kinds(src);
        assert!(k
            .iter()
            .any(|(kind, t)| *kind == TokKind::StrLit && t.contains("// not a comment")));
        assert!(!k.iter().any(|(kind, _)| kind.is_comment()));
    }

    #[test]
    fn char_literal_quote_vs_lifetime() {
        let src = "fn f<'a>(c: char) -> bool { c == '\"' && 'x' != '\\'' }";
        let k = kinds(src);
        let chars: Vec<&str> = k
            .iter()
            .filter(|(kind, _)| *kind == TokKind::CharLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, ["'\"'", "'x'", "'\\''"]);
        let lifetimes: Vec<&str> = k
            .iter()
            .filter(|(kind, _)| *kind == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a"]);
    }

    #[test]
    fn raw_identifier_is_ident_not_string() {
        let k = kinds("let r#match = 1;");
        assert!(k.contains(&(TokKind::Ident, "r#match".into())));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let k = kinds(r##"let a = b"bytes"; let c = b'x'; let r = br#"raw"#;"##);
        assert!(k.contains(&(TokKind::StrLit, "b\"bytes\"".into())));
        assert!(k.contains(&(TokKind::CharLit, "b'x'".into())));
    }

    #[test]
    fn numeric_literal_with_underscores_is_one_token() {
        let k = kinds("x * 6_364_136_223_846_793_005u64 + 1.5e-3");
        assert!(k.contains(&(TokKind::NumLit, "6_364_136_223_846_793_005u64".into())));
        assert!(k.contains(&(TokKind::NumLit, "1.5e-3".into())));
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb \"str\nacross\" c";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text(src) == text).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 5);
    }

    #[test]
    fn test_span_covers_mod_block_only() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let toks = lex(src);
        let spans = test_spans(src, &toks);
        assert_eq!(spans.len(), 1);
        let covered = &src[spans[0].clone()];
        assert!(covered.starts_with("#[cfg(test)]"));
        assert!(covered.ends_with('}'));
        assert!(!covered.contains("after"));
        assert!(!covered.contains("prod"));
    }

    #[test]
    fn cfg_all_test_and_multiple_attrs() {
        let src = "#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\nmod m { fn t() {} }\nfn live() {}\n";
        let spans = test_spans(src, &lex(src));
        assert_eq!(spans.len(), 1);
        assert!(src[spans[0].clone()].contains("fn t"));
        assert!(!src[spans[0].clone()].contains("live"));
    }

    #[test]
    fn non_test_cfg_is_not_a_test_span() {
        let src = "#[cfg(feature = \"model\")]\nfn weak() {}\n";
        assert!(test_spans(src, &lex(src)).is_empty());
    }
}
