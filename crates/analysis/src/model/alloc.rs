//! Allocation tracking: leaked-node detection for intrusive structures.
//!
//! The MPSC queue hands raw `Box` pointers around; nothing in the type
//! system proves every node is freed. Under the model, the queue source
//! registers each node allocation and release (through `queues::sync`'s
//! `track_alloc`/`track_free`, no-ops in real builds); at the end of
//! every explored execution the checker fails if any address is still
//! registered — covering the stub node and unconsumed tail on every
//! interleaving, not just the ones a unit test happens to produce.

use super::exec::{current, lock};
use super::ModelError;

/// Record a tracked allocation (no-op outside `model::check`).
pub fn track_alloc(addr: usize) {
    if let Some((exec, tid)) = current() {
        let mut s = lock(&exec.state);
        if !s.tracked.insert(addr) {
            drop(s);
            exec.report(ModelError::AllocMisuse {
                thread: tid,
                detail: format!("address {addr:#x} allocated twice without a free"),
            });
        }
    }
}

/// Record a tracked release (no-op outside `model::check`).
pub fn track_free(addr: usize) {
    if let Some((exec, tid)) = current() {
        let mut s = lock(&exec.state);
        if !s.tracked.remove(&addr) {
            drop(s);
            exec.report(ModelError::AllocMisuse {
                thread: tid,
                detail: format!("address {addr:#x} freed but never tracked (double free?)"),
            });
        }
    }
}
