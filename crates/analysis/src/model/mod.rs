//! A vendored mini-loom: exhaustive interleaving exploration with
//! happens-before tracking.
//!
//! # How it works
//!
//! [`check`] runs the supplied closure once per *schedule*. Model
//! threads ([`thread::spawn`]) are real OS threads, but a single
//! execution token serializes them: every shadow atomic operation
//! ([`AtomicUsize`], [`AtomicPtr`], …) is a scheduling point where the
//! explorer chooses which runnable thread continues. Whenever two or
//! more threads were runnable the choice is recorded, and the driver
//! backtracks over recorded choices depth-first until every
//! interleaving of the episode has been executed — small episodes
//! (a few operations per thread) explore completely in well under a
//! second.
//!
//! Within an execution, happens-before is tracked with vector clocks:
//! Release stores publish the writer's clock on the atomic, Acquire
//! loads join it, spawn/join edges propagate clocks between threads,
//! and `Relaxed` does nothing — see [`shadow`](self) for the exact
//! rules. Every [`UnsafeCell`] access is checked against the clocks; an
//! unordered pair is a data race and fails the check with both source
//! locations. [`alloc::track_alloc`]/[`alloc::track_free`] catch leaked
//! or double-freed intrusive nodes at the end of every execution.
//!
//! # What it does and does not model
//!
//! * Executions are sequentially consistent; weak behaviors show up as
//!   *missing happens-before edges* (race reports), not as stale
//!   values. This catches the bug class that matters for the queues —
//!   a publish downgraded to `Relaxed` is reported on the first
//!   consumer access — but cannot exhibit, e.g., IRIW outcomes.
//! * `std::sync::Arc` is not shadowed: reference-count edges don't
//!   enter the clocks. Tests must join threads before asserting on
//!   shared state (ours do; loom shadows `Arc` to lift this).
//! * Closures must be deterministic: replay assumes identical behavior
//!   under identical schedules.

pub mod alloc;
mod clock;
mod exec;
mod shadow;
pub mod thread;

pub use shadow::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, UnsafeCell};

use exec::{lock, set_current, Execution};
use std::fmt;
use std::sync::Arc;

/// Why a model check failed.
#[derive(Clone, Debug)]
pub enum ModelError {
    /// Two unsynchronized accesses to the same `UnsafeCell`.
    DataRace {
        /// Access pair, e.g. `write/read`.
        kind: &'static str,
        /// The earlier access (thread and source location).
        earlier: String,
        /// The later access that had no happens-before edge to it.
        later: String,
    },
    /// A model thread panicked (usually a failed assertion in the test
    /// body, on a specific interleaving).
    Panic { thread: usize, message: String },
    /// Tracked allocations outlived the execution.
    Leak { count: usize },
    /// `track_alloc`/`track_free` misuse: double alloc or double free.
    AllocMisuse { thread: usize, detail: String },
    /// An execution exceeded the per-execution step budget (unbounded
    /// spin loop in the test body?).
    StepLimit(usize),
    /// No runnable thread but not all finished (join cycle).
    Deadlock,
    /// The schedule tree is larger than the execution budget; shrink
    /// the episode or raise `Checker::max_executions`.
    ExecLimit(usize),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DataRace {
                kind,
                earlier,
                later,
            } => {
                write!(f, "{kind} data race: {earlier} not ordered before {later}")
            }
            ModelError::Panic { thread, message } => {
                write!(f, "thread {thread} panicked: {message}")
            }
            ModelError::Leak { count } => {
                write!(f, "{count} tracked allocation(s) leaked")
            }
            ModelError::AllocMisuse { thread, detail } => {
                write!(f, "allocation tracking misuse on thread {thread}: {detail}")
            }
            ModelError::StepLimit(n) => {
                write!(
                    f,
                    "execution exceeded {n} scheduling steps (unbounded spin?)"
                )
            }
            ModelError::Deadlock => write!(f, "deadlock: no runnable thread"),
            ModelError::ExecLimit(n) => {
                write!(f, "exploration exceeded {n} executions; shrink the episode")
            }
        }
    }
}

/// A failed check: the error plus where in the exploration it happened.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong.
    pub error: ModelError,
    /// 1-based index of the failing execution.
    pub execution: usize,
    /// The branch choices that reproduce it (option index at each
    /// multi-way scheduling point).
    pub schedule: Vec<usize>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (execution {}, schedule {:?})",
            self.error, self.execution, self.schedule
        )
    }
}

/// Summary of a completed (exhaustive) exploration.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of distinct interleavings executed.
    pub executions: usize,
}

/// Exploration budgets. The defaults fit episodes of a few operations
/// across 2–3 threads; `check`/`try_check` use them.
#[derive(Clone, Copy, Debug)]
pub struct Checker {
    /// Abort exploration after this many executions.
    pub max_executions: usize,
    /// Abort one execution after this many scheduling points.
    pub max_steps: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            max_executions: 1_000_000,
            max_steps: 100_000,
        }
    }
}

impl Checker {
    /// Explore every interleaving of `f`; return the first failure, or
    /// a report once the schedule tree is exhausted.
    pub fn try_check<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut replay: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        loop {
            executions += 1;
            if executions > self.max_executions {
                return Err(Failure {
                    error: ModelError::ExecLimit(self.max_executions),
                    execution: executions,
                    schedule: replay,
                });
            }
            let exec = Arc::new(Execution::new(replay.clone(), self.max_steps));
            let root_exec = exec.clone();
            let root_f = f.clone();
            let root = std::thread::spawn(move || {
                set_current(Some((root_exec.clone(), 0)));
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| root_f()));
                if let Err(payload) = out {
                    root_exec.report(ModelError::Panic {
                        thread: 0,
                        message: thread::panic_message(payload.as_ref()),
                    });
                }
                root_exec.finish_thread(0);
                set_current(None);
            });
            exec.wait_all_finished();
            let _ = root.join();

            let (failure, mut schedule) = {
                let s = lock(&exec.state);
                let mut failure = s.failure.clone();
                if failure.is_none() && !s.tracked.is_empty() {
                    failure = Some(ModelError::Leak {
                        count: s.tracked.len(),
                    });
                }
                (failure, s.schedule.clone())
            };
            if let Some(error) = failure {
                return Err(Failure {
                    error,
                    execution: executions,
                    schedule: schedule.iter().map(|d| d.chosen).collect(),
                });
            }

            // Depth-first backtrack: advance the deepest decision with an
            // untried option; exploration is complete when none remains.
            loop {
                match schedule.last_mut() {
                    None => return Ok(Report { executions }),
                    Some(d) if d.chosen + 1 < d.options => {
                        d.chosen += 1;
                        break;
                    }
                    Some(_) => {
                        schedule.pop();
                    }
                }
            }
            replay = schedule.iter().map(|d| d.chosen).collect();
        }
    }

    /// Like [`try_check`](Self::try_check), panicking on failure.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.try_check(f) {
            Ok(r) => r,
            Err(fail) => panic!("model check failed: {fail}"),
        }
    }
}

/// Explore every interleaving of `f` with default budgets; panic on the
/// first data race, leak, deadlock, or assertion failure.
pub fn check<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::default().check(f)
}

/// Explore every interleaving of `f` with default budgets; return the
/// first failure instead of panicking (negative tests).
pub fn try_check<F>(f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::default().try_check(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn explores_both_orders_of_two_threads() {
        // Two threads each do one atomic store: 2 interleavings, plus
        // the spawn/continue branches — at least 2 executions, no race.
        let r = check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = a.clone();
            let t = thread::spawn(move || {
                a2.store(1, Ordering::Release);
            });
            a.store(2, Ordering::Release);
            t.join().unwrap();
        });
        assert!(r.executions >= 2, "got {}", r.executions);
    }

    #[test]
    fn release_acquire_publication_is_clean() {
        let r = check(|| {
            let cell = Arc::new(UnsafeCell::new(0u32));
            let flag = Arc::new(AtomicUsize::new(0));
            let (c2, f2) = (cell.clone(), flag.clone());
            let t = thread::spawn(move || {
                c2.with_mut(|p| {
                    // SAFETY: model-checked exclusive access — the
                    // reader only dereferences after the Acquire load
                    // observes the Release store below.
                    unsafe { *p = 42 }
                });
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                let v = cell.with(|p| {
                    // SAFETY: acquire edge above orders the write.
                    unsafe { *p }
                });
                assert_eq!(v, 42);
            }
            t.join().unwrap();
        });
        assert!(r.executions >= 2);
    }

    #[test]
    fn relaxed_publication_is_a_race() {
        let fail = try_check(|| {
            let cell = Arc::new(UnsafeCell::new(0u32));
            let flag = Arc::new(AtomicUsize::new(0));
            let (c2, f2) = (cell.clone(), flag.clone());
            let t = thread::spawn(move || {
                c2.with_mut(|p| {
                    // SAFETY: deliberately unsynchronized (the point of
                    // the test); the model serializes real accesses.
                    unsafe { *p = 42 }
                });
                f2.store(1, Ordering::Relaxed); // BUG: no release edge
            });
            if flag.load(Ordering::Acquire) == 1 {
                cell.with(|p| {
                    // SAFETY: as above; the checker flags this access.
                    unsafe { *p }
                });
            }
            t.join().unwrap();
        })
        .expect_err("relaxed publish must race");
        assert!(
            matches!(fail.error, ModelError::DataRace { .. }),
            "unexpected failure: {fail}"
        );
    }

    #[test]
    fn leaked_allocation_is_reported() {
        let fail = try_check(|| {
            let b = Box::into_raw(Box::new(7u64));
            alloc::track_alloc(b as usize);
            // SAFETY: freeing the box we just leaked from Box::into_raw;
            // the tracker deliberately isn't told.
            unsafe { drop(Box::from_raw(b)) };
        })
        .expect_err("leak must be reported");
        assert!(matches!(fail.error, ModelError::Leak { count: 1 }));
    }

    #[test]
    fn assertion_failures_surface_with_schedule() {
        let fail = try_check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = a.clone();
            let t = thread::spawn(move || a2.store(1, Ordering::Release));
            // Fails on schedules where the child runs first.
            assert_eq!(a.load(Ordering::Acquire), 0, "child ran first");
            t.join().unwrap();
        })
        .expect_err("some schedule must trip the assert");
        assert!(matches!(fail.error, ModelError::Panic { .. }));
    }
}
