//! Model threads: real OS threads driven by the cooperative scheduler.
//!
//! `spawn`/`join` mirror `std::thread` but register with the active
//! execution: spawn and join are happens-before edges (clock
//! inheritance / final-clock join), and both are scheduling points so
//! the explorer interleaves the child against the parent.

use super::exec::{current, lock, set_current, Execution};
use std::any::Any;
use std::sync::{Arc, Mutex};

/// Handle to a model thread. Dropping without joining detaches (as with
/// `std::thread`); the execution still waits for the thread to finish.
pub struct JoinHandle<T> {
    tid: usize,
    exec: Arc<Execution>,
    real: std::thread::JoinHandle<()>,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
}

/// Extract a readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Spawn a model thread. Must be called from inside `model::check`.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, parent) = current().expect("model::thread::spawn outside model::check");
    let tid = exec.register_thread(parent);
    let child_exec = exec.clone();
    let result = Arc::new(Mutex::new(None));
    let slot = result.clone();
    let real = std::thread::spawn(move || {
        set_current(Some((child_exec.clone(), tid)));
        child_exec.wait_first_schedule(tid);
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        if let Err(payload) = &out {
            child_exec.report(super::ModelError::Panic {
                thread: tid,
                message: panic_message(payload.as_ref()),
            });
        }
        *lock(&slot) = Some(out);
        child_exec.finish_thread(tid);
        set_current(None);
    });
    // Scheduling point: the explorer decides whether parent or child
    // runs next.
    exec.yield_point(parent);
    JoinHandle {
        tid,
        exec,
        real,
        result,
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread and propagate its return value. A panic in
    /// the child has already been reported on the execution; it is also
    /// returned here, as with `std::thread::JoinHandle::join`.
    pub fn join(self) -> std::thread::Result<T> {
        let (exec, me) = current().expect("model join outside model::check");
        debug_assert!(Arc::ptr_eq(&exec, &self.exec), "join across executions");
        exec.join_thread(me, self.tid);
        let _ = self.real.join();
        lock(&self.result)
            .take()
            .expect("model thread finished without storing a result")
    }
}
