//! One model execution: cooperative single-token scheduling over real
//! OS threads, plus the DFS bookkeeping that makes repeated executions
//! enumerate every interleaving.
//!
//! Exactly one model thread runs at a time. Each shadow synchronization
//! operation is a *scheduling point*: the running thread parks, the
//! scheduler picks the next thread to run (following the replay prefix
//! during re-exploration, lowest-id first beyond it), and records a
//! decision whenever two or more threads were runnable. The explorer
//! backtracks over those decisions depth-first until the tree is
//! exhausted — the same discipline as loom/CHESS, without preemption
//! bounding (our queue episodes are small enough to explore fully).

use super::clock::VClock;
use super::ModelError;
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Lock that shrugs off poisoning: a panicking model thread must not
/// wedge the scheduler (panics are caught and reported as model errors).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Scheduling status of one model thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Ready to run, waiting for the token.
    Runnable,
    /// Holds the token.
    Running,
    /// Parked in `join` until the target thread finishes.
    BlockedOnJoin(usize),
    /// Returned from its closure.
    Finished,
}

struct ThreadState {
    status: Status,
    clock: VClock,
}

/// One branch point: `options` runnable threads existed, `chosen` (an
/// index into the sorted options) was taken.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    pub options: usize,
    pub chosen: usize,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    /// Decisions made so far in this execution.
    pub schedule: Vec<Decision>,
    /// Prefix of option indices to replay (from the explorer).
    replay: Vec<usize>,
    cursor: usize,
    steps: usize,
    /// First failure observed; later ones are ignored.
    pub failure: Option<ModelError>,
    /// Tracked heap allocations (leak detection).
    pub tracked: HashSet<usize>,
    /// After a step-limit blowout the token is abandoned and threads
    /// free-run to termination so the driver can report the failure.
    freewheel: bool,
}

pub(crate) struct Execution {
    pub state: Mutex<ExecState>,
    pub cv: Condvar,
    max_steps: usize,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The executing model thread's context, if any. Shadow operations fall
/// back to plain behavior when this is `None` (code under test running
/// outside `model::check`, e.g. ordinary unit tests of a `model`-feature
/// build).
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Option<(Arc<Execution>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

impl Execution {
    pub fn new(replay: Vec<usize>, max_steps: usize) -> Self {
        let mut root_clock = VClock::new();
        root_clock.tick(0);
        Execution {
            state: Mutex::new(ExecState {
                threads: vec![ThreadState {
                    status: Status::Running,
                    clock: root_clock,
                }],
                schedule: Vec::new(),
                replay,
                cursor: 0,
                steps: 0,
                failure: None,
                tracked: HashSet::new(),
                freewheel: false,
            }),
            cv: Condvar::new(),
            max_steps,
        }
    }

    /// Record the first failure. The execution keeps running serialized
    /// (scheduling stays cooperative, so no real data race can bite) and
    /// terminates naturally; the driver reports the stored error.
    pub fn report(&self, err: ModelError) {
        let mut s = lock(&self.state);
        if s.failure.is_none() {
            s.failure = Some(err);
        }
    }

    /// Pick the next thread to run from the runnable set, recording a
    /// decision when there was a real choice.
    fn schedule_next(&self, s: &mut ExecState) {
        let options: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if options.is_empty() {
            let all_done = s.threads.iter().all(|t| t.status == Status::Finished);
            if !all_done {
                // Only possible via a join cycle, which user code cannot
                // express without already having deadlocked for real.
                if s.failure.is_none() {
                    s.failure = Some(ModelError::Deadlock);
                }
                s.freewheel = true;
            }
            return;
        }
        let idx = if options.len() == 1 {
            0
        } else {
            let chosen = if s.cursor < s.replay.len() {
                let c = s.replay[s.cursor];
                s.cursor += 1;
                c
            } else {
                0
            };
            s.schedule.push(Decision {
                options: options.len(),
                chosen,
            });
            chosen
        };
        let tid = options[idx];
        s.threads[tid].status = Status::Running;
    }

    /// Park at a scheduling point: hand the token to whichever thread
    /// the explorer says runs next, and wait until it is this thread.
    pub fn yield_point(self: &Arc<Self>, tid: usize) {
        let mut s = lock(&self.state);
        if s.freewheel {
            drop(s);
            std::thread::yield_now();
            return;
        }
        s.steps += 1;
        if s.steps > self.max_steps {
            if s.failure.is_none() {
                s.failure = Some(ModelError::StepLimit(self.max_steps));
            }
            // Abandon the token: likely an unbounded spin loop in the
            // test body, which only free-running concurrency can exit.
            s.freewheel = true;
            self.cv.notify_all();
            return;
        }
        s.threads[tid].status = Status::Runnable;
        self.schedule_next(&mut s);
        self.cv.notify_all();
        while !s.freewheel && s.threads[tid].status != Status::Running {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Advance `tid`'s own clock and return a copy (epoch source for
    /// release stores).
    pub fn tick(&self, tid: usize) -> VClock {
        let mut s = lock(&self.state);
        s.threads[tid].clock.tick(tid);
        s.threads[tid].clock.clone()
    }

    /// Join `sync` into `tid`'s clock (acquire edge).
    pub fn acquire(&self, tid: usize, sync: &VClock) {
        let mut s = lock(&self.state);
        s.threads[tid].clock.join(sync);
    }

    /// Snapshot of `tid`'s clock (no tick): plain-memory accesses use
    /// this for race checks without creating synchronization.
    pub fn clock_of(&self, tid: usize) -> VClock {
        lock(&self.state).threads[tid].clock.clone()
    }

    /// Register a new model thread; returns its id. The child inherits
    /// the parent's clock (spawn is a happens-before edge).
    pub fn register_thread(&self, parent: usize) -> usize {
        let mut s = lock(&self.state);
        let tid = s.threads.len();
        let mut clock = s.threads[parent].clock.clone();
        clock.tick(tid);
        s.threads.push(ThreadState {
            status: Status::Runnable,
            clock,
        });
        s.threads[parent].clock.tick(parent);
        tid
    }

    /// Called by a freshly spawned real thread: wait to be scheduled for
    /// the first time.
    pub fn wait_first_schedule(self: &Arc<Self>, tid: usize) {
        let mut s = lock(&self.state);
        while !s.freewheel && s.threads[tid].status != Status::Running {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Mark `tid` finished, wake its joiners, and pass the token on.
    pub fn finish_thread(self: &Arc<Self>, tid: usize) {
        let mut s = lock(&self.state);
        s.threads[tid].status = Status::Finished;
        for t in s.threads.iter_mut() {
            if t.status == Status::BlockedOnJoin(tid) {
                t.status = Status::Runnable;
            }
        }
        if !s.freewheel {
            self.schedule_next(&mut s);
        }
        self.cv.notify_all();
    }

    /// Block until `target` finishes, then join its final clock into
    /// `tid`'s (the join happens-before edge).
    pub fn join_thread(self: &Arc<Self>, tid: usize, target: usize) {
        let mut s = lock(&self.state);
        if s.threads[target].status != Status::Finished {
            s.threads[tid].status = Status::BlockedOnJoin(target);
            if !s.freewheel {
                self.schedule_next(&mut s);
            }
            self.cv.notify_all();
            while !s.freewheel && s.threads[tid].status != Status::Running {
                s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            }
            // Freewheel escape: spin-wait for the real thread below.
            while s.threads[target].status != Status::Finished {
                if !s.freewheel {
                    // Spurious wake while still blocked cannot happen
                    // (we only become Running once the target finished),
                    // but be defensive.
                    s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
                } else {
                    drop(s);
                    std::thread::yield_now();
                    s = lock(&self.state);
                }
            }
        }
        let target_clock = s.threads[target].clock.clone();
        s.threads[tid].clock.join(&target_clock);
    }

    /// Driver-side wait for execution termination.
    pub fn wait_all_finished(&self) {
        let mut s = lock(&self.state);
        while !s.threads.iter().all(|t| t.status == Status::Finished) {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
}
