//! Vector clocks: the happens-before lattice the checker runs on.
//!
//! Every model thread `t` owns component `t` of its clock and ticks it at
//! each synchronization operation. An event at `(t, n)` happens-before a
//! thread whose clock has component `t >= n`. Release stores publish the
//! storing thread's clock on the atomic; acquire loads join it back —
//! exactly the C11 release/acquire edge, minus everything `Relaxed`.

/// A vector clock. Component `t` counts thread `t`'s synchronization
/// operations; missing components are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    /// Component for thread `tid`.
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advance this thread's own component by one.
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Pointwise maximum: afterwards `self` happens-after both inputs.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// True when the event `(tid, epoch)` happens-before this clock —
    /// i.e. this clock has already synchronized with that point of
    /// thread `tid`'s history.
    pub fn contains(&self, tid: usize, epoch: u32) -> bool {
        self.get(tid) >= epoch
    }

    /// Reset to the zero clock (a `Relaxed` store breaking a release
    /// sequence).
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_contains() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        assert!(!b.contains(0, 2));
        b.join(&a);
        assert!(b.contains(0, 2));
        assert!(b.contains(1, 1));
        assert!(!a.contains(1, 1));
        b.clear();
        assert!(!b.contains(0, 1));
    }
}
