//! Shadow `Atomic*` / `UnsafeCell` types: the instrumented stand-ins the
//! queue sources build against under `--features model`.
//!
//! Executions are explored sequentially-consistent (one thread at a
//! time), but happens-before is tracked honestly: only Release stores
//! publish a clock and only Acquire loads join one. A `Relaxed` publish
//! therefore leaves the consumer's clock behind the producer's plain
//! writes, and the next `UnsafeCell` access on the consumer side trips
//! the race check — which is precisely how a missing `Release` shows up
//! on real weakly-ordered hardware.
//!
//! Every atomic operation is a scheduling point: the thread parks
//! *before* the operation, then performs it together with its
//! happens-before bookkeeping while holding the execution token, so the
//! clock it joins always corresponds to the value it actually read.
//!
//! Outside an active `model::check` execution every operation falls
//! through to the underlying `std` primitive, so a `model`-feature build
//! still behaves normally in ordinary tests.

use super::clock::VClock;
use super::exec::{current, lock};
use super::ModelError;
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Per-atomic synchronization state: the clock published by the last
/// release store (and kept alive by the release sequence through RMWs).
#[derive(Default)]
struct SyncClock(Mutex<VClock>);

macro_rules! shadow_atomic_int {
    ($name:ident, $std:ty, $int:ty) => {
        /// Shadow integer atomic with vector-clock release/acquire
        /// tracking. API mirrors the `std` type (subset the queues use).
        #[derive(Default)]
        pub struct $name {
            real: $std,
            sync: SyncClock,
        }

        impl $name {
            pub fn new(v: $int) -> Self {
                $name {
                    real: <$std>::new(v),
                    sync: SyncClock::default(),
                }
            }

            pub fn load(&self, ord: Ordering) -> $int {
                if let Some((exec, tid)) = current() {
                    exec.yield_point(tid);
                    exec.tick(tid);
                    // Serialized execution: SeqCst costs nothing and
                    // keeps the interpreter simple; happens-before is
                    // what `ord` controls.
                    let v = self.real.load(Ordering::SeqCst);
                    if is_acquire(ord) {
                        exec.acquire(tid, &lock(&self.sync.0));
                    }
                    v
                } else {
                    self.real.load(ord)
                }
            }

            pub fn store(&self, v: $int, ord: Ordering) {
                if let Some((exec, tid)) = current() {
                    exec.yield_point(tid);
                    let clock = exec.tick(tid);
                    self.real.store(v, Ordering::SeqCst);
                    let mut sync = lock(&self.sync.0);
                    if is_release(ord) {
                        // Head of a new release sequence.
                        *sync = clock;
                    } else {
                        // A plain Relaxed store breaks the sequence.
                        sync.clear();
                    }
                } else {
                    self.real.store(v, ord)
                }
            }

            pub fn swap(&self, v: $int, ord: Ordering) -> $int {
                if let Some((exec, tid)) = current() {
                    exec.yield_point(tid);
                    exec.tick(tid);
                    let old = self.real.swap(v, Ordering::SeqCst);
                    self.rmw_edges(&exec, tid, ord);
                    old
                } else {
                    self.real.swap(v, ord)
                }
            }

            pub fn compare_exchange(
                &self,
                cur: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                if let Some((exec, tid)) = current() {
                    exec.yield_point(tid);
                    exec.tick(tid);
                    let r =
                        self.real
                            .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst);
                    match r {
                        Ok(_) => self.rmw_edges(&exec, tid, success),
                        // A failed CAS is just a load.
                        Err(_) => {
                            if is_acquire(failure) {
                                exec.acquire(tid, &lock(&self.sync.0));
                            }
                        }
                    }
                    r
                } else {
                    self.real.compare_exchange(cur, new, success, failure)
                }
            }

            /// RMW happens-before: acquire the published clock, then
            /// extend the release sequence with this thread's clock. A
            /// fully Relaxed RMW leaves the sequence intact (post-C++17
            /// release-sequence rules).
            fn rmw_edges(
                &self,
                exec: &std::sync::Arc<super::exec::Execution>,
                tid: usize,
                ord: Ordering,
            ) {
                let mut sync = lock(&self.sync.0);
                if is_acquire(ord) {
                    exec.acquire(tid, &sync);
                }
                if is_release(ord) {
                    let clock = exec.clock_of(tid);
                    sync.join(&clock);
                }
            }
        }
    };
}

/// `fetch_add` separately, for the integer atomics only (`AtomicBool`
/// has no arithmetic RMWs).
macro_rules! shadow_atomic_fetch_add {
    ($name:ident, $int:ty) => {
        impl $name {
            pub fn fetch_add(&self, v: $int, ord: Ordering) -> $int {
                if let Some((exec, tid)) = current() {
                    exec.yield_point(tid);
                    exec.tick(tid);
                    let old = self.real.fetch_add(v, Ordering::SeqCst);
                    self.rmw_edges(&exec, tid, ord);
                    old
                } else {
                    self.real.fetch_add(v, ord)
                }
            }
        }
    };
}

/// `fetch_sub`, for the lane mesh's in-flight/idle counters.
macro_rules! shadow_atomic_fetch_sub {
    ($name:ident, $int:ty) => {
        impl $name {
            pub fn fetch_sub(&self, v: $int, ord: Ordering) -> $int {
                if let Some((exec, tid)) = current() {
                    exec.yield_point(tid);
                    exec.tick(tid);
                    let old = self.real.fetch_sub(v, Ordering::SeqCst);
                    self.rmw_edges(&exec, tid, ord);
                    old
                } else {
                    self.real.fetch_sub(v, ord)
                }
            }
        }
    };
}

shadow_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
shadow_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
shadow_atomic_int!(AtomicBool, std::sync::atomic::AtomicBool, bool);
shadow_atomic_fetch_add!(AtomicUsize, usize);
shadow_atomic_fetch_add!(AtomicU64, u64);
shadow_atomic_fetch_sub!(AtomicUsize, usize);
shadow_atomic_fetch_sub!(AtomicU64, u64);

/// Shadow pointer atomic (the MPSC queue's `tail`/`next` links).
pub struct AtomicPtr<T> {
    real: std::sync::atomic::AtomicPtr<T>,
    sync: SyncClock,
}

impl<T> AtomicPtr<T> {
    pub fn new(p: *mut T) -> Self {
        AtomicPtr {
            real: std::sync::atomic::AtomicPtr::new(p),
            sync: SyncClock::default(),
        }
    }

    pub fn load(&self, ord: Ordering) -> *mut T {
        if let Some((exec, tid)) = current() {
            exec.yield_point(tid);
            exec.tick(tid);
            let p = self.real.load(Ordering::SeqCst);
            if is_acquire(ord) {
                exec.acquire(tid, &lock(&self.sync.0));
            }
            p
        } else {
            self.real.load(ord)
        }
    }

    pub fn store(&self, p: *mut T, ord: Ordering) {
        if let Some((exec, tid)) = current() {
            exec.yield_point(tid);
            let clock = exec.tick(tid);
            self.real.store(p, Ordering::SeqCst);
            let mut sync = lock(&self.sync.0);
            if is_release(ord) {
                *sync = clock;
            } else {
                sync.clear();
            }
        } else {
            self.real.store(p, ord)
        }
    }

    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        if let Some((exec, tid)) = current() {
            exec.yield_point(tid);
            exec.tick(tid);
            let old = self.real.swap(p, Ordering::SeqCst);
            let mut sync = lock(&self.sync.0);
            if is_acquire(ord) {
                exec.acquire(tid, &sync);
            }
            if is_release(ord) {
                let clock = exec.clock_of(tid);
                sync.join(&clock);
            }
            old
        } else {
            self.real.swap(p, ord)
        }
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

/// Who touched a plain-memory cell, and at what epoch.
struct CellMeta {
    last_write: Option<(usize, u32, &'static Location<'static>)>,
    reads: Vec<(usize, u32, &'static Location<'static>)>,
}

/// Shadow `UnsafeCell`: every access is race-checked against the vector
/// clocks. The loom-style `with`/`with_mut` closure API keeps the real
/// build zero-cost (see `queues::sync`). Cell accesses are *not*
/// scheduling points — the checker detects unordered (racy) access pairs
/// through the clocks regardless of where the scheduler interleaves.
pub struct UnsafeCell<T> {
    real: std::cell::UnsafeCell<T>,
    meta: Mutex<CellMeta>,
}

// SAFETY: the shadow cell is only meaningful under the model scheduler,
// which serializes all access; the race *checker* (not the type system)
// is what rejects unsynchronized use. Mirrors std's UnsafeCell bounds.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
// SAFETY: as above — cross-thread `&UnsafeCell<T>` is the whole point;
// accesses are serialized by the model token and vetted by the checker.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Creating a cell counts as a write by the creating thread, so a
    /// consumer that reaches the value without an acquire edge back to
    /// the constructor is flagged (e.g. an MPSC node published through a
    /// `Relaxed` link store).
    #[track_caller]
    pub fn new(value: T) -> Self {
        let loc = Location::caller();
        let last_write = current().map(|(exec, tid)| {
            let c = exec.clock_of(tid);
            (tid, c.get(tid), loc)
        });
        UnsafeCell {
            real: std::cell::UnsafeCell::new(value),
            meta: Mutex::new(CellMeta {
                last_write,
                reads: Vec::new(),
            }),
        }
    }

    /// Shared (read) access to the raw pointer.
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        self.check(false, Location::caller());
        f(self.real.get())
    }

    /// Exclusive (write) access to the raw pointer.
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        self.check(true, Location::caller());
        f(self.real.get())
    }

    fn check(&self, is_write: bool, loc: &'static Location<'static>) {
        let Some((exec, tid)) = current() else {
            return;
        };
        let clock = exec.clock_of(tid);
        let mut meta = lock(&self.meta);
        if let Some((wt, we, wloc)) = meta.last_write {
            if wt != tid && !clock.contains(wt, we) {
                exec.report(ModelError::DataRace {
                    kind: if is_write {
                        "write/write"
                    } else {
                        "write/read"
                    },
                    earlier: format!("write by thread {wt} at {wloc}"),
                    later: format!(
                        "{} by thread {tid} at {loc}",
                        if is_write { "write" } else { "read" }
                    ),
                });
            }
        }
        if is_write {
            for &(rt, re, rloc) in &meta.reads {
                if rt != tid && !clock.contains(rt, re) {
                    exec.report(ModelError::DataRace {
                        kind: "read/write",
                        earlier: format!("read by thread {rt} at {rloc}"),
                        later: format!("write by thread {tid} at {loc}"),
                    });
                }
            }
            meta.reads.clear();
            meta.last_write = Some((tid, clock.get(tid), loc));
        } else {
            meta.reads.retain(|&(rt, _, _)| rt != tid);
            meta.reads.push((tid, clock.get(tid), loc));
        }
    }
}
