//! CID-lifecycle model checker CLI: `cargo run -p analysis --bin fsm`.
//!
//! Default mode runs the bounded exploration matrix CI gates on:
//!
//! 1. the hardened forged-LS witness config — must be clean;
//! 2. the hardened full-adversary config (drop/dup/replay/forge) —
//!    must be clean;
//! 3. the *unhardened* forged-LS witness — must re-find the PR 6
//!    CID-queue overflow (regression witness: if the model stops
//!    finding it, the model has drifted from the code it abstracts).
//!
//! Exit code is non-zero if any expectation fails. `--emit <dir>`
//! additionally writes the unhardened counterexample as replayable
//! scenario JSON. `--replay <file>` replays a scenario file instead of
//! exploring, printing the violation it reproduces.

use analysis::fsm::{check, replay, scenario, Config, Outcome, Violation};
use std::process::ExitCode;

fn run_matrix(emit_dir: Option<&str>) -> ExitCode {
    let mut ok = true;

    for (name, cfg) in [
        (
            "hardened forged-LS witness",
            Config::forged_ls_witness(true),
        ),
        ("hardened full adversary", Config::full_adversary_hardened()),
    ] {
        match check(&cfg) {
            Outcome::Clean { states, terminals } => {
                println!("fsm: {name}: clean ({states} states, {terminals} terminal)");
            }
            Outcome::Violated(cx) => {
                println!(
                    "fsm: {name}: UNEXPECTED {} after {} actions",
                    cx.violation,
                    cx.schedule.len()
                );
                println!("{}", scenario::emit(&cfg, &cx));
                ok = false;
            }
        }
    }

    let unhardened = Config::forged_ls_witness(false);
    match check(&unhardened) {
        Outcome::Violated(cx) if cx.violation == Violation::CidQueueOverflow => {
            println!(
                "fsm: unhardened forged-LS witness: reproduces PR6 {} in {} actions (expected)",
                cx.violation,
                cx.schedule.len()
            );
            if let Some(dir) = emit_dir {
                let path = std::path::Path::new(dir).join("forged_ls_overflow.json");
                if let Err(e) = std::fs::write(&path, scenario::emit(&unhardened, &cx)) {
                    println!("fsm: cannot write {}: {e}", path.display());
                    ok = false;
                } else {
                    println!("fsm: counterexample written to {}", path.display());
                }
            }
        }
        Outcome::Violated(cx) => {
            println!(
                "fsm: unhardened forged-LS witness: wrong violation {} (expected cid-queue-overflow)",
                cx.violation
            );
            ok = false;
        }
        Outcome::Clean { states, .. } => {
            println!(
                "fsm: unhardened forged-LS witness: clean over {states} states — the model \
                 no longer reproduces the PR6 overflow; it has drifted from the code"
            );
            ok = false;
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("fsm: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (cfg, cx) = match scenario::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            println!("fsm: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match replay(&cfg, &cx.schedule) {
        Ok(Some(v)) if v == cx.violation => {
            println!(
                "fsm: {path}: reproduces {v} in {} actions",
                cx.schedule.len()
            );
            ExitCode::SUCCESS
        }
        Ok(Some(v)) => {
            println!(
                "fsm: {path}: reproduces {v}, but the file claims {}",
                cx.violation
            );
            ExitCode::FAILURE
        }
        Ok(None) => {
            println!(
                "fsm: {path}: schedule completed without violating — the recorded \
                 bug no longer reproduces against this model"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            println!("fsm: {path}: schedule diverged: {e:?}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--replay") => match args.get(1) {
            Some(path) => run_replay(path),
            None => {
                println!("fsm: --replay needs a scenario file");
                ExitCode::FAILURE
            }
        },
        Some("--emit") => match args.get(1) {
            Some(dir) => run_matrix(Some(dir)),
            None => {
                println!("fsm: --emit needs a directory");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            println!("fsm: unknown argument `{other}` (try --emit <dir> or --replay <file>)");
            ExitCode::FAILURE
        }
        None => run_matrix(None),
    }
}
