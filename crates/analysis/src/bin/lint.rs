//! Workspace invariant linter CLI: `cargo run -p analysis --bin lint`.
//!
//! Lints the workspace checkout (or an explicit root passed as a
//! positional argument) against the rules in `analysis::lint` and exits
//! non-zero if any unwaived violation is found. CI runs this as the
//! blocking `analysis` job.
//!
//! `--json` switches to machine-readable output: one object per finding
//! (file, line, rule, detail, waived) including waived findings, so CI
//! can both gate on violations and audit the waiver inventory.
//! `--annotate` additionally emits GitHub Actions `::error` workflow
//! commands for unwaived findings, which the Actions runner turns into
//! inline PR annotations.

use std::path::PathBuf;
use std::process::ExitCode;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let mut json = false;
    let mut annotate = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--annotate" => annotate = true,
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| {
        // crates/analysis → workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("analysis crate lives two levels under the workspace root")
            .to_path_buf()
    });
    let all = analysis::lint::audit_workspace(&root);
    let violations: Vec<_> = all.iter().filter(|f| !f.waived).collect();

    if json {
        println!("[");
        for (i, f) in all.iter().enumerate() {
            let comma = if i + 1 == all.len() { "" } else { "," };
            println!(
                "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"waived\": {}, \"detail\": \"{}\"}}{comma}",
                json_escape(&f.file.to_string_lossy()),
                f.line,
                f.rule,
                f.waived,
                json_escape(&f.detail),
            );
        }
        println!("]");
    } else if violations.is_empty() {
        println!(
            "lint: workspace clean ({}, {} waived finding(s))",
            root.display(),
            all.len()
        );
    } else {
        for f in &violations {
            println!("{f}");
        }
        println!("lint: {} violation(s)", violations.len());
    }
    if annotate {
        for f in &violations {
            // GitHub Actions workflow command → inline PR annotation.
            println!(
                "::error file={},line={},title=lint {}::{}",
                f.file.display(),
                f.line,
                f.rule,
                f.detail
            );
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
