//! Workspace invariant linter CLI: `cargo run -p analysis --bin lint`.
//!
//! Lints the workspace checkout (or an explicit root passed as the first
//! argument) against the rules in `analysis::lint` and exits non-zero if
//! any violation is found. CI runs this as part of the `analysis` job.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // crates/analysis → workspace root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(|p| p.parent())
                .expect("analysis crate lives two levels under the workspace root")
                .to_path_buf()
        });
    let findings = analysis::lint::lint_workspace(&root);
    if findings.is_empty() {
        println!("lint: workspace clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!("lint: {} violation(s)", findings.len());
    ExitCode::FAILURE
}
