//! Workspace invariant linter.
//!
//! Text-level enforcement of repo-specific rules that `clippy` cannot
//! express (run with `cargo run -p analysis --bin lint`):
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `relaxed-ordering` | `crates/queues/src` | every `Ordering::Relaxed` carries a `// relaxed-ok: <why>` justification — the queues' publish/consume edges are exactly what the model checker proves, so an unjustified downgrade is a red flag |
//! | `no-panic` | `crates/core/src`, `crates/nvmf/src` | no `panic!` / `.unwrap()` / `.expect(` in non-test code: malformed wire input must become a counted protocol error, not a crash (internal invariants may waive) |
//! | `wall-clock` | all crates except `simkit` and the bench `shims` | no `Instant` / `SystemTime`: simulations must be deterministic; real time enters only through `simkit` (e.g. its `Stopwatch`) |
//! | `hashmap-iter` | all crates | no iteration over `HashMap`s declared in the same file: iteration order is randomized per process and leaks nondeterminism into metrics, snapshots, and reports — use `BTreeMap`, sort first, or waive with a reason |
//! | `safety-comment` | all code incl. tests | every `unsafe` block/impl/fn is adjacent to a `// SAFETY:` (or `# Safety` doc) explaining why it is sound |
//! | `foreign-rand` | all crates except `simkit` and the `shims` | no `rand`-crate APIs (`thread_rng`, `StdRng`, …) or ad-hoc LCG multiplier constants: every random draw must flow from `simkit::rng` (seeded, forkable) or simulations stop being bit-reproducible |
//! | `no-payload-to_vec` | data-plane crates (`core`, `nvmf`, `nvme`, `fabric`, `queues`, `faults`) | no `.to_vec()` in non-test code: payloads travel as refcounted `Bytes` handles allocated once at issue (DESIGN.md §12), and a stray copy silently re-introduces per-request allocation — waived only at the fault plane's copy-on-write corrupt site |
//!
//! Matching runs on comment- and string-literal-stripped source (so the
//! rule table above doesn't flag itself), with a test-region heuristic:
//! everything from the first `#[cfg(test)]` to end-of-file, plus whole
//! files under `tests/`, `benches/`, or `examples/`, is test code and
//! exempt from all rules except `safety-comment`.
//!
//! Waivers: `// lint: allow(<rule>) <reason>` on the offending line or
//! the line above. The `relaxed-ordering` rule also accepts its
//! dedicated `// relaxed-ok: <why>` marker, and `hashmap-iter` accepts
//! `// hashmap-iter-ok: <why>`.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule identifier (e.g. `no-panic`).
    pub rule: &'static str,
    /// File, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub detail: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file.display(),
            self.line,
            self.rule,
            self.detail,
            self.excerpt
        )
    }
}

/// A source line split into its code and comment parts (string-literal
/// contents blanked out of the code part).
struct Line {
    code: String,
    comment: String,
}

/// Lexer state carried across lines.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    /// Inside `/* */`, with nesting depth.
    Block(u32),
    /// Inside a string literal; the flag is `raw` and the count is the
    /// number of `#`s that close a raw string.
    Str {
        raw: bool,
        hashes: u32,
    },
}

/// Split source into per-line (code, comment) pairs. Comment text and
/// string-literal contents never reach the rule matchers, so patterns
/// mentioned in docs or error messages cannot trip them.
fn split_source(src: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw_line in src.lines() {
        let bytes: Vec<char> = raw_line.chars().collect();
        let mut code = String::with_capacity(bytes.len());
        let mut comment = String::new();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match mode {
                Mode::Block(depth) => {
                    comment.push(c);
                    if c == '/' && next == Some('*') {
                        mode = Mode::Block(depth + 1);
                        comment.push('*');
                        i += 2;
                        continue;
                    }
                    if c == '*' && next == Some('/') {
                        comment.push('/');
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(depth - 1)
                        };
                        i += 2;
                        continue;
                    }
                    i += 1;
                }
                Mode::Str { raw, hashes } => {
                    if !raw && c == '\\' {
                        i += 2; // skip the escaped char
                        continue;
                    }
                    if c == '"' {
                        let closing = (0..hashes as usize)
                            .all(|k| bytes.get(i + 1 + k).copied() == Some('#'));
                        if !raw || closing {
                            code.push('"');
                            i += 1 + hashes as usize;
                            mode = Mode::Code;
                            continue;
                        }
                    }
                    code.push(' '); // blank out literal contents
                    i += 1;
                }
                Mode::Code => {
                    if c == '/' && next == Some('/') {
                        comment.push_str(&raw_line[byte_offset(raw_line, i)..]);
                        break;
                    }
                    if c == '/' && next == Some('*') {
                        mode = Mode::Block(1);
                        comment.push_str("/*");
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        // Possibly the body of r"…" / br#"…"# whose prefix
                        // we already consumed as code below.
                        code.push('"');
                        let (raw, hashes) = raw_prefix(&bytes, i);
                        mode = Mode::Str { raw, hashes };
                        i += 1;
                        continue;
                    }
                    if c == 'r' || c == 'b' {
                        // Raw/byte string prefix: emit it and let the '"'
                        // branch take over at the quote.
                        if let Some(skip) = string_prefix_len(&bytes, i) {
                            for k in 0..skip {
                                code.push(bytes[i + k]);
                            }
                            i += skip;
                            continue;
                        }
                    }
                    if c == '\'' {
                        // Char literal vs lifetime. A char literal closes
                        // within a few chars; a lifetime never closes.
                        if let Some(len) = char_literal_len(&bytes, i) {
                            code.push('\'');
                            for _ in 1..len - 1 {
                                code.push(' ');
                            }
                            code.push('\'');
                            i += len;
                            continue;
                        }
                        code.push('\'');
                        i += 1;
                        continue;
                    }
                    code.push(c);
                    i += 1;
                }
            }
        }
        // A line comment ends at the newline.
        if let Mode::Str { raw: false, .. } = mode {
            // Plain string literals do not span lines unless escaped; be
            // permissive and reset (an escaped newline keeps the literal
            // open, which at worst blanks one extra line of code).
        }
        out.push(Line { code, comment });
    }
    out
}

/// Byte offset of char index `i` within `line`.
fn byte_offset(line: &str, i: usize) -> usize {
    line.char_indices()
        .nth(i)
        .map(|(b, _)| b)
        .unwrap_or(line.len())
}

/// If `bytes[i..]` starts a raw/byte string prefix (`r`, `b`, `br`, plus
/// `#`s) followed by `"`, return the prefix length (excluding the quote).
fn string_prefix_len(bytes: &[char], i: usize) -> Option<usize> {
    // Only treat as a prefix when not inside an identifier.
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) == Some(&'r') {
        j += 1;
    }
    if j == i {
        return None;
    }
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        Some(j - i)
    } else {
        None
    }
}

/// Number of `#`s for the raw string whose opening quote is at `i`
/// (looks backwards at the just-emitted prefix).
fn raw_prefix(bytes: &[char], i: usize) -> (bool, u32) {
    let mut hashes = 0u32;
    let mut j = i;
    while j > 0 && bytes[j - 1] == '#' {
        hashes += 1;
        j -= 1;
    }
    let raw = j > 0 && bytes[j - 1] == 'r';
    (raw, hashes)
}

/// Length of a char literal starting at the `'` at position `i`, or
/// `None` for a lifetime.
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        '\\' => {
            // Escaped: find the closing quote within a small window
            // (handles \n, \', \u{...} up to 10 chars).
            (i + 3..(i + 14).min(bytes.len()))
                .find(|&j| bytes[j] == '\'')
                .map(|j| j - i + 1)
        }
        _ => {
            if bytes.get(i + 2) == Some(&'\'') {
                Some(3)
            } else {
                None // `'a` lifetime or `'static`
            }
        }
    }
}

/// True if a comment waives `rule`: on the flagged line itself, or
/// anywhere in the contiguous block of comment-only lines directly above
/// it (so a waiver justification may wrap across lines).
fn waived(lines: &[Line], idx: usize, rule: &str, extra_marker: Option<&str>) -> bool {
    let hit = |c: &str| {
        let allow = format!("lint: allow({rule})");
        c.contains(&allow) || extra_marker.is_some_and(|m| c.contains(m))
    };
    if hit(&lines[idx].comment) {
        return true;
    }
    let mut i = idx;
    while i > 0 && lines[i - 1].code.trim().is_empty() && !lines[i - 1].comment.is_empty() {
        i -= 1;
        if hit(&lines[i].comment) {
            return true;
        }
    }
    false
}

/// Find `needle` in `hay` requiring non-identifier chars (or the string
/// boundary) on both sides of the match.
fn find_token(hay: &str, needle: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let ok_before = at == 0 || hay[..at].chars().next_back().is_some_and(|c| !ident(c));
        let ok_after = hay[at + needle.len()..]
            .chars()
            .next()
            .is_none_or(|c| !ident(c));
        if ok_before && ok_after {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Identifiers declared as `HashMap` in this file: struct fields or
/// locals (`name: HashMap<…>`, `let [mut] name = HashMap::…`).
fn hashmap_idents(lines: &[Line]) -> Vec<String> {
    let mut idents = Vec::new();
    for line in lines {
        let code = &line.code;
        let mut from = 0;
        while let Some(pos) = code[from..].find("HashMap") {
            let at = from + pos;
            from = at + "HashMap".len();
            let before = code[..at].trim_end();
            if let Some(before) = before.strip_suffix(':') {
                // `name: HashMap<…>` — field or typed binding.
                let name: String = before
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                if !name.is_empty() && !name.chars().next().unwrap().is_numeric() {
                    idents.push(name);
                }
            } else if let Some(before) = before.strip_suffix('=') {
                // `let [mut] name = HashMap::…`.
                let before = before.trim_end();
                let name: String = before
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                if !name.is_empty() && name != "mut" && !name.chars().next().unwrap().is_numeric() {
                    idents.push(name);
                }
            }
        }
    }
    idents.sort();
    idents.dedup();
    idents
}

/// Does `code` iterate over `ident` (method call or `for … in` form)?
fn iterates(code: &str, ident: &str) -> bool {
    const ITER_METHODS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain()",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
        ".retain(",
    ];
    for m in ITER_METHODS {
        let pat = format!("{ident}{m}");
        if find_token(code, &pat) {
            return true;
        }
    }
    // `for (k, v) in &map` / `in &mut map` / `in map` (move).
    for prefix in ["in &mut ", "in &", "in "] {
        for qual in ["self.", ""] {
            let pat = format!("{prefix}{qual}{ident}");
            if let Some(pos) = code.find(&pat) {
                let after = code[pos + pat.len()..].chars().next();
                if after.is_none_or(|c| !c.is_alphanumeric() && c != '_' && c != '(') {
                    return true;
                }
            }
        }
    }
    false
}

/// Lint one file's source. `rel` is the path relative to the workspace
/// root (used for rule scoping); findings carry it verbatim.
pub fn lint_source(rel: &Path, src: &str) -> Vec<Finding> {
    let lines = split_source(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let mut findings = Vec::new();

    let in_test_file = rel_str.contains("/tests/")
        || rel_str.contains("/benches/")
        || rel_str.contains("/examples/");
    // Heuristic: the `#[cfg(test)] mod tests` block is by convention the
    // last item in a file, so treat everything after the attribute as
    // test code.
    let test_from = lines
        .iter()
        .position(|l| l.code.contains("cfg(test"))
        .unwrap_or(lines.len());
    let is_test = |idx: usize| in_test_file || idx >= test_from;

    let mut push = |rule: &'static str, idx: usize, detail: String| {
        findings.push(Finding {
            rule,
            file: rel.to_path_buf(),
            line: idx + 1,
            detail,
            excerpt: raw_lines.get(idx).unwrap_or(&"").trim().to_string(),
        });
    };

    let scope_queues = rel_str.contains("crates/queues/src");
    let scope_no_panic = rel_str.contains("crates/core/src") || rel_str.contains("crates/nvmf/src");
    // The bench shims (vendored criterion replacement) exist to measure
    // wall time; simkit is the sanctioned wall-clock boundary.
    let scope_wall_clock =
        !rel_str.contains("crates/simkit/") && !rel_str.contains("crates/shims/");
    // simkit::rng is the sanctioned RNG home; the shims may carry PRNG
    // constants of their own (the proptest shim seeds deterministically).
    let scope_foreign_rand = scope_wall_clock;
    // The zero-copy data plane: anywhere a payload handle flows.
    let scope_no_to_vec = [
        "crates/core/src",
        "crates/nvmf/src",
        "crates/nvme/src",
        "crates/fabric/src",
        "crates/queues/src",
        "crates/faults/src",
    ]
    .iter()
    .any(|s| rel_str.contains(s));

    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;

        // relaxed-ordering
        if scope_queues
            && !is_test(idx)
            && code.contains("Ordering::Relaxed")
            && !waived(&lines, idx, "relaxed-ordering", Some("relaxed-ok:"))
        {
            push(
                "relaxed-ordering",
                idx,
                "Ordering::Relaxed on a queue path without a `// relaxed-ok:` justification"
                    .to_string(),
            );
        }

        // no-panic
        if scope_no_panic && !is_test(idx) && !waived(&lines, idx, "no-panic", None) {
            for (pat, what) in [
                ("panic!(", "panic!"),
                (".unwrap()", ".unwrap()"),
                (".expect(", ".expect()"),
            ] {
                if code.contains(pat) {
                    push(
                        "no-panic",
                        idx,
                        format!(
                            "{what} in protocol code — malformed input must be a counted \
                             protocol error, not a crash (waive for internal invariants)"
                        ),
                    );
                }
            }
        }

        // wall-clock
        if scope_wall_clock && !is_test(idx) && !waived(&lines, idx, "wall-clock", None) {
            for pat in [
                "std::time::Instant",
                "std::time::SystemTime",
                "Instant::now",
                "SystemTime::now",
            ] {
                if code.contains(pat) {
                    push(
                        "wall-clock",
                        idx,
                        format!("{pat}: wall-clock time outside simkit breaks determinism"),
                    );
                    break;
                }
            }
        }

        // foreign-rand
        if scope_foreign_rand && !is_test(idx) && !waived(&lines, idx, "foreign-rand", None) {
            // `rand::` path use, with a non-identifier char before it so
            // `operand::` and friends don't trip.
            let crate_use = {
                let ident = |c: char| c.is_alphanumeric() || c == '_';
                let mut found = false;
                let mut from = 0;
                while let Some(pos) = code[from..].find("rand::") {
                    let at = from + pos;
                    if at == 0 || code[..at].chars().next_back().is_some_and(|c| !ident(c)) {
                        found = true;
                        break;
                    }
                    from = at + "rand::".len();
                }
                found
            };
            let entropy_api = ["thread_rng", "from_entropy", "StdRng", "SmallRng", "OsRng"]
                .iter()
                .any(|t| find_token(code, t));
            // Ad-hoc LCG constants (PCG's multiplier, the POSIX rand()
            // multiplier), matched with digit-group underscores removed.
            let digits: String = code.chars().filter(|&c| c != '_').collect();
            let lcg = digits.contains("6364136223846793005") || digits.contains("1103515245");
            if crate_use || entropy_api || lcg {
                push(
                    "foreign-rand",
                    idx,
                    "randomness outside simkit::rng — use Kernel::rng() / Pcg32::fork so \
                     runs stay seeded and bit-reproducible"
                        .to_string(),
                );
            }
        }

        // no-payload-to_vec
        if scope_no_to_vec
            && !is_test(idx)
            && code.contains(".to_vec()")
            && !waived(&lines, idx, "no-payload-to_vec", None)
        {
            push(
                "no-payload-to_vec",
                idx,
                ".to_vec() on the data plane: payloads are shared `Bytes` handles — \
                 copying re-introduces per-request allocation (DESIGN.md §12)"
                    .to_string(),
            );
        }

        // safety-comment — applies to test code too.
        if find_token(code, "unsafe") && !code.contains("unsafe_code") {
            // Look upwards through comments/attributes/empty lines (and a
            // few code lines, for multi-line statements) for SAFETY.
            let mut ok = line.comment.contains("SAFETY") || line.comment.contains("# Safety");
            let mut j = idx;
            let mut budget = 20usize;
            while !ok && j > 0 && budget > 0 {
                j -= 1;
                budget -= 1;
                let l = &lines[j];
                if l.comment.contains("SAFETY") || l.comment.contains("# Safety") {
                    ok = true;
                    break;
                }
                let code_trim = l.code.trim();
                // Stop at the previous statement boundary; keep scanning
                // through comments, attributes, and continuation lines.
                if !code_trim.is_empty()
                    && !code_trim.starts_with('#')
                    && (code_trim.ends_with(';') || code_trim.ends_with('}'))
                {
                    break;
                }
            }
            if !ok {
                push(
                    "safety-comment",
                    idx,
                    "`unsafe` without an adjacent `// SAFETY:` (or `# Safety` doc) comment"
                        .to_string(),
                );
            }
        }
    }

    // hashmap-iter: needs the declared-ident pass first.
    let idents = hashmap_idents(&lines);
    if !idents.is_empty() {
        for (idx, line) in lines.iter().enumerate() {
            if is_test(idx) || waived(&lines, idx, "hashmap-iter", Some("hashmap-iter-ok:")) {
                continue;
            }
            for ident in &idents {
                if iterates(&line.code, ident) {
                    findings.push(Finding {
                        rule: "hashmap-iter",
                        file: rel.to_path_buf(),
                        line: idx + 1,
                        detail: format!(
                            "iteration over HashMap `{ident}`: order is nondeterministic — \
                             use BTreeMap, sort, or waive with a reason"
                        ),
                        excerpt: raw_lines.get(idx).unwrap_or(&"").trim().to_string(),
                    });
                    break;
                }
            }
        }
    }

    findings.sort_by_key(|f| f.line);
    findings
}

/// Recursively collect `.rs` files under `dir`, skipping build output and
/// VCS metadata.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lint every `.rs` file under `root` (the workspace checkout). Findings
/// are sorted by path and line; empty means the workspace is clean.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs(root, &mut files);
    let mut findings = Vec::new();
    for path in files {
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(&path);
        findings.extend(lint_source(rel, &src));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<Finding> {
        lint_source(Path::new(rel), src)
    }

    #[test]
    fn strips_comments_and_strings() {
        let lines = split_source(
            "let x = \"panic!(\"; // panic!(\nlet y = 1; /* .unwrap() */ let z = 2;\n",
        );
        assert!(!lines[0].code.contains("panic!("));
        assert!(lines[0].comment.contains("panic!("));
        assert!(!lines[1].code.contains(".unwrap()"));
        assert!(lines[1].code.contains("let z"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = split_source("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(lines[0].code.contains("&'a str"));
    }

    #[test]
    fn relaxed_needs_justification() {
        let src = "use std::sync::atomic::Ordering;\nfn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n";
        let f = lint("crates/queues/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "relaxed-ordering");
        assert_eq!(f[0].line, 2);

        let ok = "fn f(a: &AtomicUsize) {\n    // relaxed-ok: producer-owned index\n    a.load(Ordering::Relaxed);\n}\n";
        assert!(lint("crates/queues/src/x.rs", ok).is_empty());
        // Out of scope: other crates may use Relaxed freely.
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn no_panic_rule_and_waiver() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panic");

        let waived =
            "// lint: allow(no-panic) internal invariant: set two lines up\nfn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        assert!(lint("crates/nvmf/src/x.rs", waived).is_empty());
        // unwrap_or_else must not match.
        assert!(lint(
            "crates/core/src/x.rs",
            "fn f(o: Option<u8>) -> u8 { o.unwrap_or_else(|| 0) }\n"
        )
        .is_empty());
        // Out of scope crate.
        assert!(lint("crates/workload/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_region_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
        let in_tests_dir = "fn t() { std::time::Instant::now(); }\n";
        assert!(lint("crates/core/tests/x.rs", in_tests_dir).is_empty());
    }

    #[test]
    fn wall_clock_outside_simkit() {
        let src = "fn f() { let _t = std::time::Instant::now(); }\n";
        let f = lint("crates/experiments/src/bin/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        assert!(lint("crates/simkit/src/time.rs", src).is_empty());
    }

    #[test]
    fn hashmap_iteration_flagged() {
        let src = "use std::collections::HashMap;\nstruct S { conns: HashMap<u16, u8> }\nimpl S {\n    fn metrics(&self) -> Vec<u16> { self.conns.keys().copied().collect() }\n}\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hashmap-iter");
        assert_eq!(f[0].line, 4);

        // for-loop form on a local.
        let src2 =
            "fn f() {\n    let m = HashMap::new();\n    for (k, v) in &m { let _ = (k, v); }\n}\n";
        let f2 = lint("crates/core/src/x.rs", src2);
        assert_eq!(f2.len(), 1, "{f2:?}");

        // Lookup (no iteration) is fine.
        let src3 = "struct S { conns: HashMap<u16, u8> }\nimpl S {\n    fn get(&self, k: u16) -> Option<&u8> { self.conns.get(&k) }\n}\n";
        assert!(lint("crates/core/src/x.rs", src3).is_empty());

        // Waived.
        let src4 = "struct S { conns: HashMap<u16, u8> }\nimpl S {\n    fn all(&self) -> Vec<u16> {\n        // hashmap-iter-ok: sorted below\n        let mut v: Vec<u16> = self.conns.keys().copied().collect();\n        v.sort_unstable(); v\n    }\n}\n";
        assert!(
            lint("crates/core/src/x.rs", src4).is_empty(),
            "{:?}",
            lint("crates/core/src/x.rs", src4)
        );
    }

    #[test]
    fn foreign_rand_flagged() {
        let src = "fn f() -> u32 { rand::thread_rng().gen() }\n";
        let f = lint("crates/workload/src/x.rs", src);
        assert!(
            f.iter().any(|x| x.rule == "foreign-rand"),
            "rand:: path use must be flagged: {f:?}"
        );

        // Ad-hoc LCG with digit-group underscores.
        let lcg =
            "fn f(s: u64) -> u64 { s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1) }\n";
        assert_eq!(lint("crates/workload/src/x.rs", lcg).len(), 1);
        let posix = "fn f(s: u32) -> u32 { s.wrapping_mul(1103515245).wrapping_add(12345) }\n";
        assert_eq!(lint("crates/nvme/src/x.rs", posix).len(), 1);

        // Sanctioned homes: simkit's own PCG and the deterministic
        // proptest shim.
        assert!(lint("crates/simkit/src/rng.rs", lcg).is_empty());
        assert!(lint("crates/shims/proptest/src/lib.rs", lcg).is_empty());

        // Test code is exempt; waivers work; comments/strings don't trip;
        // identifiers merely ending in "rand" don't trip.
        assert!(lint("crates/workload/tests/x.rs", src).is_empty());
        let waived = "// lint: allow(foreign-rand) vendored reference constant\nfn f(s: u32) -> u32 { s.wrapping_mul(1103515245) }\n";
        assert!(lint("crates/workload/src/x.rs", waived).is_empty());
        assert!(lint(
            "crates/workload/src/x.rs",
            "// rand::thread_rng is banned here\nfn f() { let _ = \"StdRng\"; }\n"
        )
        .is_empty());
        assert!(lint("crates/workload/src/x.rs", "fn f() { operand::eval(); }\n").is_empty());
    }

    #[test]
    fn payload_to_vec_flagged_on_data_plane() {
        let src = "fn f(b: &Bytes) -> Vec<u8> { b.to_vec() }\n";
        for scope in [
            "crates/core/src/x.rs",
            "crates/nvmf/src/x.rs",
            "crates/nvme/src/x.rs",
            "crates/fabric/src/x.rs",
            "crates/queues/src/x.rs",
            "crates/faults/src/x.rs",
        ] {
            let f = lint(scope, src);
            assert!(
                f.iter().any(|x| x.rule == "no-payload-to_vec"),
                "{scope}: {f:?}"
            );
        }
        // Off the data plane (reports, experiments) copies are fine.
        assert!(lint("crates/workload/src/x.rs", src).is_empty());
        assert!(lint("crates/experiments/src/x.rs", src).is_empty());
        // Test code is exempt.
        assert!(lint(
            "crates/nvmf/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(b: &Bytes) -> Vec<u8> { b.to_vec() }\n}\n"
        )
        .is_empty());
        // The single sanctioned site is waived with a reason.
        let waived = "// lint: allow(no-payload-to_vec) copy-on-write: corrupt must not\n// mutate the shared buffer\nfn f(b: &Bytes) -> Vec<u8> { b.to_vec() }\n";
        assert!(lint("crates/faults/src/x.rs", waived).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let f = lint("crates/queues/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");

        let ok = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees validity\n    unsafe { *p }\n}\n";
        assert!(lint("crates/queues/src/x.rs", ok).is_empty());

        // Applies inside test code too.
        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn t(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
        assert_eq!(lint("crates/queues/src/x.rs", in_test).len(), 1);

        // `unsafe impl` with the comment directly above.
        let imp = "// SAFETY: T is Send\nunsafe impl<T: Send> Send for X<T> {}\n";
        assert!(lint("crates/queues/src/x.rs", imp).is_empty());
    }
}
