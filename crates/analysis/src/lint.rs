//! Workspace invariant linter, token-stream edition.
//!
//! Enforcement of repo-specific rules that `clippy` cannot express (run
//! with `cargo run -p analysis --bin lint`). Matching runs on the real
//! token stream from [`crate::lex`] — comments and string/char literal
//! contents never reach the rule matchers, nested block comments and
//! raw strings lex correctly, and `cfg(test)` exemption covers exactly
//! the attributed item (brace-matched), not "first `cfg(test)` to
//! end-of-file".
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `atomic-ordering` | `crates/queues/src` | every `Ordering::<X>` literal carries a justification at the call site: `// relaxed-ok: <why>` for `Relaxed`, `// ordering-ok: <why>` for any ordering — the queues' publish/consume edges are exactly what the model checker proves, so an unexplained ordering choice is a red flag |
//! | `atomic-facade` | `crates/queues/src` (except `sync.rs`) | every `Atomic*` type must be a `queues::sync` facade export (so the mini-loom model shadows it), and `std::sync::atomic::Atomic*` may not be named directly — only through the facade |
//! | `no-panic` | `crates/core/src`, `crates/nvmf/src` | no `panic!` / `unreachable!` / `todo!` / `unimplemented!` / `.unwrap()` / `.expect(` in non-test code: malformed wire input must become a counted protocol error, not a crash (internal invariants may waive) |
//! | `no-threading` | all crates except `simkit`, `analysis`, and the bench `shims` | no `static mut`, `thread_local!`, or `thread::spawn` outside the sanctioned homes: the deterministic kernel owns all parallelism, and ad-hoc threads/globals are exactly the bugs the model checker cannot see (scoped `std::thread::scope` spawns in experiment drivers stay legal) |
//! | `wall-clock` | all crates except `simkit` and the bench `shims` | no `Instant` / `SystemTime`: simulations must be deterministic; real time enters only through `simkit` (e.g. its `Stopwatch`) |
//! | `hashmap-iter` | all crates | no iteration over `HashMap`s declared in the same file: iteration order is randomized per process and leaks nondeterminism into metrics, snapshots, and reports — use `BTreeMap`, sort first, or waive with a reason |
//! | `safety-comment` | all code incl. tests | every `unsafe` token is paired, by token span, with a `// SAFETY:` (or `# Safety` doc) comment: same line, or walking the token stream backwards through comments/attributes/signature tokens until the previous statement boundary (`;`, `{`, `}`) |
//! | `foreign-rand` | all crates except `simkit` and the `shims` | no `rand`-crate APIs (`thread_rng`, `StdRng`, …) or ad-hoc LCG multiplier constants: every random draw must flow from `simkit::rng` (seeded, forkable) or simulations stop being bit-reproducible |
//! | `no-payload-to_vec` | data-plane crates (`core`, `nvmf`, `nvme`, `fabric`, `queues`, `faults`) | no `.to_vec()` in non-test code: payloads travel as refcounted `Bytes` handles allocated once at issue (DESIGN.md §12), and a stray copy silently re-introduces per-request allocation |
//!
//! Waivers: `// lint: allow(<rule>) <reason>` — anchored, not
//! substring-matched: the waiver text must *start* a comment line
//! (after the `//`/`/*`/leading-`*` furniture), on the offending line
//! or in the contiguous run of comment-only lines directly above it. A
//! waiver mentioned mid-sentence, or inside a string literal, does not
//! count. `atomic-ordering` also accepts its dedicated `relaxed-ok:` /
//! `ordering-ok:` markers, and `hashmap-iter` accepts
//! `hashmap-iter-ok:`.

use crate::lex::{lex, test_spans, Tok, TokKind};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// One rule violation (or, with `waived` set, a justified exception —
/// reported by the audit API for `--json` consumers, filtered out of
/// the blocking lint).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule identifier (e.g. `no-panic`).
    pub rule: &'static str,
    /// File, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub detail: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// True if an anchored waiver comment covers this finding.
    pub waived: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file.display(),
            self.line,
            self.rule,
            self.detail,
            self.excerpt
        )
    }
}

/// Per-file lint context: token stream plus line-indexed views of it.
struct Ctx<'s> {
    src: &'s str,
    rel: &'s Path,
    rel_str: String,
    toks: Vec<Tok>,
    /// Indices into `toks` of non-comment tokens.
    code: Vec<usize>,
    /// 1-indexed by line (index 0 unused): line carries any code token.
    line_has_code: Vec<bool>,
    /// 1-indexed by line: stripped comment content lines on that line.
    comments: Vec<Vec<String>>,
    /// Byte spans of `#[cfg(test)]`-attributed items.
    tspans: Vec<Range<usize>>,
    in_test_file: bool,
    raw_lines: Vec<&'s str>,
}

/// Strip comment furniture: `//`(`/`|`!`), `/*`(`*`|`!`) … `*/`, and a
/// leading `*` on block-comment continuation lines. Returns one content
/// string per source line the comment token spans.
fn comment_content_lines(text: &str, kind: TokKind) -> Vec<String> {
    match kind {
        TokKind::LineComment => {
            let t = text.trim_start_matches('/');
            let t = t.strip_prefix('!').unwrap_or(t);
            vec![t.trim().to_string()]
        }
        TokKind::BlockComment => {
            let inner = text.strip_prefix("/*").unwrap_or(text);
            let inner = inner.strip_suffix("*/").unwrap_or(inner);
            let inner = inner.strip_prefix('*').unwrap_or(inner);
            let inner = inner.strip_prefix('!').unwrap_or(inner);
            inner
                .split('\n')
                .map(|l| l.trim().trim_start_matches('*').trim().to_string())
                .collect()
        }
        _ => Vec::new(),
    }
}

impl<'s> Ctx<'s> {
    fn new(rel: &'s Path, src: &'s str) -> Self {
        let toks = lex(src);
        let tspans = test_spans(src, &toks);
        let code: Vec<usize> = (0..toks.len())
            .filter(|&i| !toks[i].kind.is_comment())
            .collect();
        let nlines = src.lines().count() + 2;
        let mut line_has_code = vec![false; nlines + 1];
        let mut comments = vec![Vec::new(); nlines + 1];
        for tok in &toks {
            let text = tok.text(src);
            if tok.kind.is_comment() {
                for (k, content) in comment_content_lines(text, tok.kind)
                    .into_iter()
                    .enumerate()
                {
                    if let Some(slot) = comments.get_mut(tok.line + k) {
                        slot.push(content);
                    }
                }
            } else {
                let spanned = text.matches('\n').count();
                for l in tok.line..=tok.line + spanned {
                    if let Some(slot) = line_has_code.get_mut(l) {
                        *slot = true;
                    }
                }
            }
        }
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let in_test_file = rel_str.contains("/tests/")
            || rel_str.contains("/benches/")
            || rel_str.contains("/examples/");
        Ctx {
            src,
            rel,
            rel_str,
            toks,
            code,
            line_has_code,
            comments,
            tspans,
            in_test_file,
            raw_lines: src.lines().collect(),
        }
    }

    /// Text of the `ci`-th code token ("" past the end).
    fn t(&self, ci: usize) -> &str {
        self.code
            .get(ci)
            .map(|&i| self.toks[i].text(self.src))
            .unwrap_or("")
    }

    fn kind(&self, ci: usize) -> Option<TokKind> {
        self.code.get(ci).map(|&i| self.toks[i].kind)
    }

    fn line_of(&self, ci: usize) -> usize {
        self.code.get(ci).map(|&i| self.toks[i].line).unwrap_or(1)
    }

    /// Do the code tokens starting at `ci` match `pats` exactly?
    fn seq(&self, ci: usize, pats: &[&str]) -> bool {
        pats.iter().enumerate().all(|(k, p)| self.t(ci + k) == *p)
    }

    /// Is the `ci`-th code token inside test code?
    fn is_test(&self, ci: usize) -> bool {
        if self.in_test_file {
            return true;
        }
        let Some(&i) = self.code.get(ci) else {
            return false;
        };
        let at = self.toks[i].span.start;
        self.tspans.iter().any(|s| s.contains(&at))
    }

    /// Anchored waiver check: a comment content line starting with
    /// `lint: allow(<rule>)` or one of `markers`, on `line` itself or in
    /// the contiguous run of comment-only lines directly above.
    fn waived(&self, line: usize, rule: &str, markers: &[&str]) -> bool {
        let allow = format!("lint: allow({rule})");
        let hit = |l: usize| {
            self.comments.get(l).is_some_and(|cs| {
                cs.iter()
                    .any(|c| c.starts_with(&allow) || markers.iter().any(|m| c.starts_with(m)))
            })
        };
        if hit(line) {
            return true;
        }
        let mut l = line;
        while l > 1
            && !self.line_has_code[l - 1]
            && self.comments.get(l - 1).is_some_and(|c| !c.is_empty())
        {
            l -= 1;
            if hit(l) {
                return true;
            }
        }
        false
    }

    fn push(
        &self,
        out: &mut Vec<Finding>,
        rule: &'static str,
        line: usize,
        detail: String,
        waived: bool,
    ) {
        out.push(Finding {
            rule,
            file: self.rel.to_path_buf(),
            line,
            detail,
            excerpt: self
                .raw_lines
                .get(line.saturating_sub(1))
                .unwrap_or(&"")
                .trim()
                .to_string(),
            waived,
        });
    }
}

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// `atomic-ordering`: every `Ordering::<X>` in queue code justified at
/// the call site.
fn rule_atomic_ordering(ctx: &Ctx, out: &mut Vec<Finding>) {
    if !ctx.rel_str.contains("crates/queues/src") {
        return;
    }
    for ci in 0..ctx.code.len() {
        if ctx.t(ci) != "Ordering" || !ctx.seq(ci + 1, &[":", ":"]) {
            continue;
        }
        let ord = ctx.t(ci + 3).to_string();
        if !ORDERINGS.contains(&ord.as_str()) || ctx.is_test(ci) {
            continue;
        }
        let line = ctx.line_of(ci);
        let markers: &[&str] = if ord == "Relaxed" {
            &["relaxed-ok:", "ordering-ok:"]
        } else {
            &["ordering-ok:"]
        };
        let waived = ctx.waived(line, "atomic-ordering", markers);
        ctx.push(
            out,
            "atomic-ordering",
            line,
            format!(
                "Ordering::{ord} on a queue path without a justification — add \
                 `// ordering-ok: <why>` (or `// relaxed-ok: <why>` for Relaxed) \
                 at the call site"
            ),
            waived,
        );
    }
}

/// `atomic-facade`: queue code may only name `Atomic*` types exported by
/// the `queues::sync` facade, and never via `std::sync::atomic` paths.
fn rule_atomic_facade(ctx: &Ctx, out: &mut Vec<Finding>, facade: Option<&BTreeSet<String>>) {
    if !ctx.rel_str.contains("crates/queues/src") || ctx.rel_str.ends_with("sync.rs") {
        return;
    }
    let is_atomic = |t: &str| t.starts_with("Atomic") && t.len() > "Atomic".len();
    for ci in 0..ctx.code.len() {
        // Direct std path: `std :: sync :: atomic :: …` reaching an
        // Atomic type (either immediately or inside a `{…}` use-group).
        if ctx.seq(ci, &["std", ":", ":", "sync", ":", ":", "atomic", ":", ":"]) && !ctx.is_test(ci)
        {
            let mut hits: Vec<usize> = Vec::new();
            if is_atomic(ctx.t(ci + 9)) {
                hits.push(ci + 9);
            } else if ctx.t(ci + 9) == "{" {
                let mut j = ci + 10;
                while j < ctx.code.len() && ctx.t(j) != "}" {
                    if is_atomic(ctx.t(j)) {
                        hits.push(j);
                    }
                    j += 1;
                }
            }
            for h in hits {
                let line = ctx.line_of(h);
                let waived = ctx.waived(line, "atomic-facade", &[]);
                let name = ctx.t(h).to_string();
                ctx.push(
                    out,
                    "atomic-facade",
                    line,
                    format!(
                        "std::sync::atomic::{name} named directly — queue code must go \
                         through the crate::sync facade so the model checker shadows it"
                    ),
                    waived,
                );
            }
        }
        // Facade-membership: any Atomic* identifier must be an export of
        // queues::sync (checked only when the facade set is available).
        if let Some(facade) = facade {
            if ctx.kind(ci) == Some(TokKind::Ident)
                && is_atomic(ctx.t(ci))
                && !facade.contains(ctx.t(ci))
                && !ctx.is_test(ci)
            {
                let line = ctx.line_of(ci);
                let waived = ctx.waived(line, "atomic-facade", &[]);
                let name = ctx.t(ci).to_string();
                ctx.push(
                    out,
                    "atomic-facade",
                    line,
                    format!(
                        "{name} has no loom-facade twin in queues::sync — add it to both \
                         facade branches so the mini-loom model can shadow it"
                    ),
                    waived,
                );
            }
        }
    }
}

/// `no-panic`: protocol code must return typed errors, not crash.
fn rule_no_panic(ctx: &Ctx, out: &mut Vec<Finding>) {
    if !ctx.rel_str.contains("crates/core/src") && !ctx.rel_str.contains("crates/nvmf/src") {
        return;
    }
    for ci in 0..ctx.code.len() {
        let what = if matches!(
            ctx.t(ci),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && ctx.t(ci + 1) == "!"
        {
            Some(format!("{}!", ctx.t(ci)))
        } else if ctx.t(ci) == "." && matches!(ctx.t(ci + 1), "unwrap" | "expect") {
            Some(format!(".{}()", ctx.t(ci + 1)))
        } else {
            None
        };
        let Some(what) = what else { continue };
        if ctx.is_test(ci) {
            continue;
        }
        let line = ctx.line_of(ci);
        let waived = ctx.waived(line, "no-panic", &[]);
        ctx.push(
            out,
            "no-panic",
            line,
            format!(
                "{what} in protocol code — malformed input must be a counted \
                 protocol error, not a crash (waive for internal invariants)"
            ),
            waived,
        );
    }
}

/// `no-threading`: no ad-hoc parallelism or mutable globals outside the
/// sanctioned homes — the deterministic kernel owns all concurrency.
fn rule_no_threading(ctx: &Ctx, out: &mut Vec<Finding>) {
    if ctx.rel_str.contains("crates/simkit/")
        || ctx.rel_str.contains("crates/analysis/")
        || ctx.rel_str.contains("crates/shims/")
    {
        return;
    }
    for ci in 0..ctx.code.len() {
        let what = if ctx.seq(ci, &["static", "mut"]) {
            Some("static mut")
        } else if ctx.seq(ci, &["thread_local", "!"]) {
            Some("thread_local!")
        } else if ctx.seq(ci, &["thread", ":", ":", "spawn"]) {
            Some("thread::spawn")
        } else {
            None
        };
        let Some(what) = what else { continue };
        if ctx.is_test(ci) {
            continue;
        }
        let line = ctx.line_of(ci);
        let waived = ctx.waived(line, "no-threading", &[]);
        ctx.push(
            out,
            "no-threading",
            line,
            format!(
                "{what} outside simkit/analysis: the deterministic kernel owns all \
                 parallelism — free threads and mutable globals break reproducibility \
                 and evade the model checker"
            ),
            waived,
        );
    }
}

/// `wall-clock`: real time only enters through simkit.
fn rule_wall_clock(ctx: &Ctx, out: &mut Vec<Finding>) {
    if ctx.rel_str.contains("crates/simkit/") || ctx.rel_str.contains("crates/shims/") {
        return;
    }
    for ci in 0..ctx.code.len() {
        if ctx.kind(ci) != Some(TokKind::Ident)
            || !matches!(ctx.t(ci), "Instant" | "SystemTime")
            || ctx.is_test(ci)
        {
            continue;
        }
        let line = ctx.line_of(ci);
        let waived = ctx.waived(line, "wall-clock", &[]);
        let name = ctx.t(ci).to_string();
        ctx.push(
            out,
            "wall-clock",
            line,
            format!("{name}: wall-clock time outside simkit breaks determinism"),
            waived,
        );
    }
}

/// `foreign-rand`: all randomness flows from simkit::rng.
fn rule_foreign_rand(ctx: &Ctx, out: &mut Vec<Finding>) {
    if ctx.rel_str.contains("crates/simkit/") || ctx.rel_str.contains("crates/shims/") {
        return;
    }
    const LCG: &[&str] = &["6364136223846793005", "1103515245"];
    let mut lines = BTreeSet::new();
    for ci in 0..ctx.code.len() {
        let hit = (ctx.t(ci) == "rand" && ctx.seq(ci + 1, &[":", ":"]))
            || (ctx.kind(ci) == Some(TokKind::Ident)
                && matches!(
                    ctx.t(ci),
                    "thread_rng" | "from_entropy" | "StdRng" | "SmallRng" | "OsRng"
                ))
            || (ctx.kind(ci) == Some(TokKind::NumLit) && {
                let digits: String = ctx.t(ci).chars().filter(|&c| c != '_').collect();
                LCG.iter().any(|l| digits.contains(l))
            });
        if hit && !ctx.is_test(ci) {
            lines.insert(ctx.line_of(ci));
        }
    }
    for line in lines {
        let waived = ctx.waived(line, "foreign-rand", &[]);
        ctx.push(
            out,
            "foreign-rand",
            line,
            "randomness outside simkit::rng — use Kernel::rng() / Pcg32::fork so \
             runs stay seeded and bit-reproducible"
                .to_string(),
            waived,
        );
    }
}

/// `no-payload-to_vec`: the data plane moves `Bytes` handles, not copies.
fn rule_no_to_vec(ctx: &Ctx, out: &mut Vec<Finding>) {
    let in_scope = [
        "crates/core/src",
        "crates/nvmf/src",
        "crates/nvme/src",
        "crates/fabric/src",
        "crates/queues/src",
        "crates/faults/src",
    ]
    .iter()
    .any(|s| ctx.rel_str.contains(s));
    if !in_scope {
        return;
    }
    for ci in 0..ctx.code.len() {
        if !ctx.seq(ci, &[".", "to_vec", "("]) || ctx.is_test(ci) {
            continue;
        }
        let line = ctx.line_of(ci);
        let waived = ctx.waived(line, "no-payload-to_vec", &[]);
        ctx.push(
            out,
            "no-payload-to_vec",
            line,
            ".to_vec() on the data plane: payloads are shared `Bytes` handles — \
             copying re-introduces per-request allocation (DESIGN.md §12)"
                .to_string(),
            waived,
        );
    }
}

/// `hashmap-iter`: no iteration over `HashMap`s declared in this file.
fn rule_hashmap_iter(ctx: &Ctx, out: &mut Vec<Finding>) {
    // Pass 1: identifiers declared as HashMap — `name: [path::]HashMap`
    // fields/bindings and `name = [path::]HashMap` initializations.
    let mut idents: BTreeSet<String> = BTreeSet::new();
    for ci in 0..ctx.code.len() {
        if ctx.t(ci) != "HashMap" {
            continue;
        }
        // Walk back over a `seg :: seg :: HashMap` path to its start.
        let mut s = ci;
        while s >= 3
            && ctx.t(s - 1) == ":"
            && ctx.t(s - 2) == ":"
            && ctx.kind(s - 3) == Some(TokKind::Ident)
        {
            s -= 3;
        }
        if s < 2 {
            continue;
        }
        let before = ctx.t(s - 1);
        let single_colon = before == ":" && (s < 2 || ctx.t(s.wrapping_sub(2)) != ":");
        if (single_colon || before == "=") && ctx.kind(s - 2) == Some(TokKind::Ident) {
            let name = ctx.t(s - 2);
            if name != "mut" && !name.chars().next().is_some_and(|c| c.is_numeric()) {
                idents.insert(name.to_string());
            }
        }
    }
    if idents.is_empty() {
        return;
    }
    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "into_iter",
        "into_keys",
        "into_values",
        "retain",
    ];
    // Pass 2: iteration sites — one finding per line.
    let mut hits: Vec<(usize, String)> = Vec::new();
    for ci in 0..ctx.code.len() {
        // `map.keys()` method form.
        if ctx.kind(ci) == Some(TokKind::Ident)
            && idents.contains(ctx.t(ci))
            && ctx.t(ci + 1) == "."
            && ITER_METHODS.contains(&ctx.t(ci + 2))
            && ctx.t(ci + 3) == "("
            && !ctx.is_test(ci)
        {
            hits.push((ctx.line_of(ci), ctx.t(ci).to_string()));
        }
        // `for … in [&][mut ][self.]map` form (a trailing `.` or `(`
        // means a method call or fn result, handled above / not ours).
        if ctx.t(ci) == "in" {
            let mut j = ci + 1;
            while ctx.t(j) == "&" {
                j += 1;
            }
            if ctx.t(j) == "mut" {
                j += 1;
            }
            if ctx.t(j) == "self" && ctx.t(j + 1) == "." {
                j += 2;
            }
            if ctx.kind(j) == Some(TokKind::Ident)
                && idents.contains(ctx.t(j))
                && ctx.t(j + 1) != "."
                && ctx.t(j + 1) != "("
                && !ctx.is_test(j)
            {
                hits.push((ctx.line_of(j), ctx.t(j).to_string()));
            }
        }
    }
    let mut seen_lines = BTreeSet::new();
    for (line, ident) in hits {
        if !seen_lines.insert(line) {
            continue;
        }
        let waived = ctx.waived(line, "hashmap-iter", &["hashmap-iter-ok:"]);
        ctx.push(
            out,
            "hashmap-iter",
            line,
            format!(
                "iteration over HashMap `{ident}`: order is nondeterministic — \
                 use BTreeMap, sort, or waive with a reason"
            ),
            waived,
        );
    }
}

/// `safety-comment`: pair every `unsafe` with a SAFETY comment by token
/// span — same line, or backwards through comments/attributes/signature
/// tokens until the previous statement boundary.
fn rule_safety_comment(ctx: &Ctx, out: &mut Vec<Finding>) {
    let safety = |t: &Tok| {
        let text = t.text(ctx.src);
        text.contains("SAFETY") || text.contains("# Safety")
    };
    for ti in 0..ctx.toks.len() {
        let tok = &ctx.toks[ti];
        if tok.kind != TokKind::Ident || tok.text(ctx.src) != "unsafe" {
            continue;
        }
        // Same-line comment (before or after the unsafe token).
        let mut ok = ctx
            .toks
            .iter()
            .any(|t| t.kind.is_comment() && t.line == tok.line && safety(t));
        // Token-span walk backwards: comments and attribute/signature
        // tokens are transparent; `;` / `{` / `}` end the search at the
        // previous statement boundary.
        let mut j = ti;
        while !ok && j > 0 {
            j -= 1;
            let prev = &ctx.toks[j];
            if prev.kind.is_comment() {
                if safety(prev) {
                    ok = true;
                }
                continue;
            }
            if matches!(prev.text(ctx.src), ";" | "{" | "}") {
                break;
            }
        }
        if ok {
            continue;
        }
        let line = tok.line;
        let waived = ctx.waived(line, "safety-comment", &[]);
        ctx.push(
            out,
            "safety-comment",
            line,
            "`unsafe` without a paired `// SAFETY:` (or `# Safety` doc) comment".to_string(),
            waived,
        );
    }
}

/// Parse the `Atomic*` exports of a `queues::sync` facade source: every
/// `Atomic`-prefixed identifier that appears in it (both cfg branches
/// re-export the same names, so a plain scan is exact).
pub fn facade_atomics(src: &str) -> BTreeSet<String> {
    let toks = lex(src);
    toks.iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text(src))
        .filter(|t| t.starts_with("Atomic") && t.len() > "Atomic".len())
        .map(str::to_string)
        .collect()
}

/// Audit one file: every finding, including waived ones. `facade` is the
/// `queues::sync` Atomic export set for the `atomic-facade` rule (None
/// skips the membership check; the direct-std-path check always runs).
pub fn audit_source_with(rel: &Path, src: &str, facade: Option<&BTreeSet<String>>) -> Vec<Finding> {
    let ctx = Ctx::new(rel, src);
    let mut out = Vec::new();
    rule_atomic_ordering(&ctx, &mut out);
    rule_atomic_facade(&ctx, &mut out, facade);
    rule_no_panic(&ctx, &mut out);
    rule_no_threading(&ctx, &mut out);
    rule_wall_clock(&ctx, &mut out);
    rule_foreign_rand(&ctx, &mut out);
    rule_no_to_vec(&ctx, &mut out);
    rule_safety_comment(&ctx, &mut out);
    rule_hashmap_iter(&ctx, &mut out);
    out.sort_by_key(|f| f.line);
    out
}

/// Lint one file: unwaived violations only.
pub fn lint_source_with(rel: &Path, src: &str, facade: Option<&BTreeSet<String>>) -> Vec<Finding> {
    audit_source_with(rel, src, facade)
        .into_iter()
        .filter(|f| !f.waived)
        .collect()
}

/// Lint one file with no facade context (unit-test convenience).
pub fn lint_source(rel: &Path, src: &str) -> Vec<Finding> {
    lint_source_with(rel, src, None)
}

/// Recursively collect `.rs` files under `dir`, skipping build output and
/// VCS metadata.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Audit every `.rs` file under `root`: all findings, waived included,
/// sorted by path and line. The `queues::sync` facade export set is
/// parsed from the checkout itself.
pub fn audit_workspace(root: &Path) -> Vec<Finding> {
    let facade = std::fs::read_to_string(root.join("crates/queues/src/sync.rs"))
        .map(|src| facade_atomics(&src))
        .ok();
    let mut files = Vec::new();
    collect_rs(root, &mut files);
    let mut findings = Vec::new();
    for path in files {
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(&path);
        findings.extend(audit_source_with(rel, &src, facade.as_ref()));
    }
    findings
}

/// Lint every `.rs` file under `root` (the workspace checkout). Findings
/// are sorted by path and line; empty means the workspace is clean.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    audit_workspace(root)
        .into_iter()
        .filter(|f| !f.waived)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<Finding> {
        lint_source(Path::new(rel), src)
    }

    #[test]
    fn ordering_needs_justification() {
        let src = "use std::sync::atomic::Ordering;\nfn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n";
        let f = lint("crates/queues/src/x.rs", src);
        assert!(f.iter().any(|x| x.rule == "atomic-ordering" && x.line == 2));

        let ok = "fn f(a: &AtomicUsize) {\n    // relaxed-ok: producer-owned index\n    a.load(Ordering::Relaxed);\n}\n";
        assert!(lint("crates/queues/src/x.rs", ok).is_empty());
        // Acquire/Release need a justification too — relaxed-ok does not
        // cover them, ordering-ok does.
        let acq = "fn f(a: &AtomicUsize) {\n    // relaxed-ok: wrong marker\n    a.load(Ordering::Acquire);\n}\n";
        assert_eq!(lint("crates/queues/src/x.rs", acq).len(), 1);
        let acq_ok = "fn f(a: &AtomicUsize) {\n    // ordering-ok: pairs with the Release in push\n    a.load(Ordering::Acquire);\n}\n";
        assert!(lint("crates/queues/src/x.rs", acq_ok).is_empty());
        // Out of scope: other crates may pick orderings freely.
        assert!(lint("crates/core/src/x.rs", src)
            .iter()
            .all(|x| x.rule != "atomic-ordering"));
    }

    #[test]
    fn atomic_facade_membership_and_std_path() {
        let facade: BTreeSet<String> = ["AtomicUsize".to_string(), "AtomicPtr".to_string()].into();
        // An Atomic type with no facade twin.
        let src = "use crate::sync::AtomicUsize;\nfn f(x: &AtomicU64) { let _ = x; }\n";
        let f = lint_source_with(Path::new("crates/queues/src/x.rs"), src, Some(&facade));
        assert!(
            f.iter()
                .any(|x| x.rule == "atomic-facade" && x.detail.contains("AtomicU64")),
            "{f:?}"
        );
        // Facade members are fine.
        let ok = "use crate::sync::{AtomicUsize, AtomicPtr};\nfn f(a: &AtomicUsize, p: &AtomicPtr<u8>) { let _ = (a, p); }\n";
        assert!(
            lint_source_with(Path::new("crates/queues/src/x.rs"), ok, Some(&facade)).is_empty()
        );
        // Direct std path is flagged even for facade members…
        let std_path = "use std::sync::atomic::AtomicUsize;\n";
        let f = lint_source_with(Path::new("crates/queues/src/x.rs"), std_path, Some(&facade));
        assert!(f.iter().any(|x| x.rule == "atomic-facade"), "{f:?}");
        // …including inside a use-group, while `Ordering` alone is fine.
        let group = "use std::sync::atomic::{AtomicUsize, Ordering};\n";
        let f = lint_source_with(Path::new("crates/queues/src/x.rs"), group, Some(&facade));
        assert_eq!(f.iter().filter(|x| x.rule == "atomic-facade").count(), 1);
        assert!(lint_source_with(
            Path::new("crates/queues/src/x.rs"),
            "use std::sync::atomic::Ordering;\n",
            Some(&facade)
        )
        .is_empty());
        // sync.rs itself and non-queues crates are out of scope.
        assert!(
            lint_source_with(Path::new("crates/queues/src/sync.rs"), src, Some(&facade)).is_empty()
        );
        assert!(lint_source_with(Path::new("crates/core/src/x.rs"), src, Some(&facade)).is_empty());
    }

    #[test]
    fn no_panic_rule_and_waiver() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panic");

        let waived =
            "// lint: allow(no-panic) internal invariant: set two lines up\nfn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        assert!(lint("crates/nvmf/src/x.rs", waived).is_empty());
        // unwrap_or_else must not match.
        assert!(lint(
            "crates/core/src/x.rs",
            "fn f(o: Option<u8>) -> u8 { o.unwrap_or_else(|| 0) }\n"
        )
        .is_empty());
        // The new ports: unreachable!/todo!/unimplemented! are crashes too.
        for bad in ["unreachable!(\"x\")", "todo!()", "unimplemented!()"] {
            let src = format!("fn f() {{ {bad} }}\n");
            let f = lint("crates/nvmf/src/x.rs", &src);
            assert_eq!(f.len(), 1, "{bad}: {f:?}");
            assert_eq!(f[0].rule, "no-panic");
        }
        // Out of scope crate.
        assert!(lint("crates/workload/src/x.rs", src).is_empty());
    }

    #[test]
    fn waiver_in_string_does_not_waive() {
        // The waiver text inside a string literal is data, not a waiver.
        let src = "fn f(o: Option<u8>) -> u8 {\n    let _msg = \"lint: allow(no-panic) not a real waiver\";\n    o.unwrap()\n}\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-panic");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn waiver_mentioned_mid_comment_does_not_waive() {
        // A comment that merely *mentions* the waiver syntax must not
        // waive — the old substring engine honored this.
        let src = "// see lint: allow(no-panic) in target.rs for the pattern\nfn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        // Anchored at comment start still works, including block form.
        let ok = "/* lint: allow(no-panic) internal invariant */\nfn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        assert!(lint("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn audit_reports_waived_findings() {
        let src = "// lint: allow(no-panic) internal invariant\nfn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let all = audit_source_with(Path::new("crates/core/src/x.rs"), src, None);
        assert_eq!(all.len(), 1);
        assert!(all[0].waived);
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_region_is_exempt_and_precisely_scoped() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
        let in_tests_dir = "fn t() { let _x: Option<Instant> = None; }\n";
        assert!(lint("crates/core/tests/x.rs", in_tests_dir).is_empty());
        // Precision: code *after* a cfg(test) module is production again
        // (the old first-cfg(test)-to-EOF heuristic exempted it).
        let after = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let f = lint("crates/core/src/x.rs", after);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-panic");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn no_threading_rule() {
        for (bad, name) in [
            ("static mut COUNTER: u64 = 0;\n", "static mut"),
            ("thread_local! { static X: u8 = 0; }\n", "thread_local!"),
            ("fn f() { std::thread::spawn(|| {}); }\n", "thread::spawn"),
        ] {
            let f = lint("crates/core/src/x.rs", bad);
            assert!(
                f.iter().any(|x| x.rule == "no-threading"),
                "{name} must be flagged: {f:?}"
            );
        }
        // Scoped spawns (experiment drivers) are legal: `s.spawn` has no
        // `thread::` path.
        let scoped = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        assert!(lint("crates/experiments/src/x.rs", scoped)
            .iter()
            .all(|x| x.rule != "no-threading"));
        // Sanctioned homes.
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        assert!(lint("crates/simkit/src/x.rs", spawn).is_empty());
        assert!(lint("crates/analysis/src/x.rs", spawn).is_empty());
        // The threaded conservative-lookahead engine (DESIGN.md §17)
        // lives inside the simkit sanction: scoped lane workers pass.
        let engine =
            "pub fn run() { std::thread::scope(|s| { for _ in 0..4 { s.spawn(|| {}); } }); }\n";
        assert!(lint("crates/simkit/src/parallel.rs", engine).is_empty());
        // Test code is exempt (stress tests drive real threads).
        assert!(lint("crates/queues/tests/x.rs", spawn).is_empty());
    }

    #[test]
    fn wall_clock_outside_simkit() {
        let src = "fn f() { let _t = std::time::Instant::now(); }\n";
        let f = lint("crates/experiments/src/bin/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        assert!(lint("crates/simkit/src/time.rs", src).is_empty());
        // `Instant` in a string or comment does not trip the token rule.
        assert!(lint(
            "crates/experiments/src/x.rs",
            "// Instant is banned here\nfn f() { let _ = \"Instant\"; }\n"
        )
        .is_empty());
    }

    #[test]
    fn hashmap_iteration_flagged() {
        let src = "use std::collections::HashMap;\nstruct S { conns: HashMap<u16, u8> }\nimpl S {\n    fn metrics(&self) -> Vec<u16> { self.conns.keys().copied().collect() }\n}\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hashmap-iter");
        assert_eq!(f[0].line, 4);

        // for-loop form on a local.
        let src2 =
            "fn f() {\n    let m = HashMap::new;\n    let m = HashMap::new();\n    for (k, v) in &m { let _ = (k, v); }\n}\n";
        let f2 = lint("crates/core/src/x.rs", src2);
        assert_eq!(f2.len(), 1, "{f2:?}");

        // Lookup (no iteration) is fine.
        let src3 = "struct S { conns: HashMap<u16, u8> }\nimpl S {\n    fn get(&self, k: u16) -> Option<&u8> { self.conns.get(&k) }\n}\n";
        assert!(lint("crates/core/src/x.rs", src3).is_empty());

        // Waived.
        let src4 = "struct S { conns: HashMap<u16, u8> }\nimpl S {\n    fn all(&self) -> Vec<u16> {\n        // hashmap-iter-ok: sorted below\n        let mut v: Vec<u16> = self.conns.keys().copied().collect();\n        v.sort_unstable(); v\n    }\n}\n";
        assert!(
            lint("crates/core/src/x.rs", src4).is_empty(),
            "{:?}",
            lint("crates/core/src/x.rs", src4)
        );
    }

    #[test]
    fn foreign_rand_flagged() {
        let src = "fn f() -> u32 { rand::thread_rng().gen() }\n";
        let f = lint("crates/workload/src/x.rs", src);
        assert!(
            f.iter().any(|x| x.rule == "foreign-rand"),
            "rand:: path use must be flagged: {f:?}"
        );

        // Ad-hoc LCG with digit-group underscores.
        let lcg =
            "fn f(s: u64) -> u64 { s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1) }\n";
        assert_eq!(lint("crates/workload/src/x.rs", lcg).len(), 1);
        let posix = "fn f(s: u32) -> u32 { s.wrapping_mul(1103515245).wrapping_add(12345) }\n";
        assert_eq!(lint("crates/nvme/src/x.rs", posix).len(), 1);

        // Sanctioned homes: simkit's own PCG and the deterministic
        // proptest shim.
        assert!(lint("crates/simkit/src/rng.rs", lcg).is_empty());
        assert!(lint("crates/shims/proptest/src/lib.rs", lcg).is_empty());

        // Test code is exempt; waivers work; comments/strings don't trip;
        // identifiers merely ending in "rand" don't trip.
        assert!(lint("crates/workload/tests/x.rs", src).is_empty());
        let waived = "// lint: allow(foreign-rand) vendored reference constant\nfn f(s: u32) -> u32 { s.wrapping_mul(1103515245) }\n";
        assert!(lint("crates/workload/src/x.rs", waived).is_empty());
        assert!(lint(
            "crates/workload/src/x.rs",
            "// rand::thread_rng is banned here\nfn f() { let _ = \"StdRng\"; }\n"
        )
        .is_empty());
        assert!(lint("crates/workload/src/x.rs", "fn f() { operand::eval(); }\n").is_empty());
    }

    #[test]
    fn payload_to_vec_flagged_on_data_plane() {
        let src = "fn f(b: &Bytes) -> Vec<u8> { b.to_vec() }\n";
        for scope in [
            "crates/core/src/x.rs",
            "crates/nvmf/src/x.rs",
            "crates/nvme/src/x.rs",
            "crates/fabric/src/x.rs",
            "crates/queues/src/x.rs",
            "crates/faults/src/x.rs",
        ] {
            let f = lint(scope, src);
            assert!(
                f.iter().any(|x| x.rule == "no-payload-to_vec"),
                "{scope}: {f:?}"
            );
        }
        // Off the data plane (reports, experiments) copies are fine.
        assert!(lint("crates/workload/src/x.rs", src).is_empty());
        assert!(lint("crates/experiments/src/x.rs", src).is_empty());
        // Test code is exempt.
        assert!(lint(
            "crates/nvmf/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(b: &Bytes) -> Vec<u8> { b.to_vec() }\n}\n"
        )
        .is_empty());
        // The single sanctioned site is waived with a reason.
        let waived = "// lint: allow(no-payload-to_vec) copy-on-write: corrupt must not\n// mutate the shared buffer\nfn f(b: &Bytes) -> Vec<u8> { b.to_vec() }\n";
        assert!(lint("crates/faults/src/x.rs", waived).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let f = lint("crates/queues/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");

        let ok = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees validity\n    unsafe { *p }\n}\n";
        assert!(lint("crates/queues/src/x.rs", ok).is_empty());

        // Applies inside test code too.
        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn t(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
        assert_eq!(lint("crates/queues/src/x.rs", in_test).len(), 1);

        // `unsafe impl` with the comment directly above, through an
        // attribute.
        let imp =
            "// SAFETY: T is Send\n#[allow(dead_code)]\nunsafe impl<T: Send> Send for X<T> {}\n";
        assert!(lint("crates/queues/src/x.rs", imp).is_empty());

        // Token-span pairing: a SAFETY comment separated from the
        // `unsafe` by a complete statement does not cover it.
        let stale = "fn f(p: *const u8) -> u8 {\n    // SAFETY: covers something else\n    let _x = 1;\n    unsafe { *p }\n}\n";
        let f = lint("crates/queues/src/x.rs", stale);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);

        // Doc-comment `# Safety` on an unsafe fn counts.
        let doc = "/// # Safety\n/// `p` must be valid for reads.\npub unsafe fn read(p: *const u8) -> u8 { *p }\n";
        assert!(lint("crates/queues/src/x.rs", doc)
            .iter()
            .all(|x| x.rule != "safety-comment"));
    }

    #[test]
    fn facade_atomics_parses_exports() {
        let src =
            "pub use std::sync::atomic::{AtomicPtr, AtomicUsize};\npub struct UnsafeCell<T>(T);\n";
        let set = facade_atomics(src);
        assert!(set.contains("AtomicUsize") && set.contains("AtomicPtr"));
        assert_eq!(set.len(), 2);
    }
}
