//! Endpoints: a node's attachment to the fabric.

use simkit::{Metrics, MetricsSource, Resource, SimDuration, SimTime};

/// Index of an endpoint within its [`crate::Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub u32);

/// Traffic counters for one endpoint.
#[derive(Clone, Debug, Default)]
pub struct EndpointStats {
    /// Messages transmitted.
    pub msgs_tx: u64,
    /// Messages received.
    pub msgs_rx: u64,
    /// Payload bytes transmitted.
    pub bytes_tx: u64,
    /// Payload bytes received.
    pub bytes_rx: u64,
    /// Frames (packets) transmitted, including framing of each message.
    pub frames_tx: u64,
    /// Frames received.
    pub frames_rx: u64,
}

/// A node's duplex attachment: TX/RX NIC cost centers plus uplink and
/// downlink wires, all FIFO single-server [`Resource`]s.
#[derive(Debug)]
pub struct Endpoint {
    /// Identifier within the network.
    pub id: EndpointId,
    /// Node name for reports.
    pub name: String,
    pub(crate) tx_nic: Resource,
    pub(crate) rx_nic: Resource,
    pub(crate) uplink: Resource,
    pub(crate) downlink: Resource,
    /// Distinct sources with bulk transfers in the downlink's current
    /// busy period (incast detection).
    pub(crate) downlink_senders: Vec<EndpointId>,
    /// Counters.
    pub stats: EndpointStats,
}

impl Endpoint {
    pub(crate) fn new(id: EndpointId, name: String) -> Self {
        Endpoint {
            id,
            name,
            tx_nic: Resource::new("tx_nic"),
            rx_nic: Resource::new("rx_nic"),
            uplink: Resource::new("uplink"),
            downlink: Resource::new("downlink"),
            downlink_senders: Vec::new(),
            stats: EndpointStats::default(),
        }
    }

    /// Uplink utilization over `[0, now]`.
    pub fn uplink_utilization(&self, now: SimTime) -> f64 {
        self.uplink.utilization(now)
    }

    /// Downlink utilization over `[0, now]`.
    pub fn downlink_utilization(&self, now: SimTime) -> f64 {
        self.downlink.utilization(now)
    }

    /// Current downlink backlog (how far behind the receive wire is).
    pub fn downlink_backlog(&self, now: SimTime) -> SimDuration {
        self.downlink.backlog(now)
    }

    /// Current uplink backlog: how long a message enqueued now would wait
    /// before its serialization starts. The target runtime uses this as
    /// its send-path backpressure signal.
    pub fn uplink_backlog(&self, now: SimTime) -> SimDuration {
        self.uplink.backlog(now)
    }
}

impl MetricsSource for Endpoint {
    fn metrics(&self, now: SimTime) -> Metrics {
        let mut m = Metrics::at(now);
        m.set("link.uplink_util", self.uplink_utilization(now));
        m.set("link.downlink_util", self.downlink_utilization(now));
        m.set(
            "link.uplink_backlog_us",
            self.uplink_backlog(now).as_micros_f64(),
        );
        m.set(
            "link.downlink_backlog_us",
            self.downlink_backlog(now).as_micros_f64(),
        );
        m.set("nic.tx_util", self.tx_nic.utilization(now));
        m.set("nic.rx_util", self.rx_nic.utilization(now));
        m.set("msgs_tx", self.stats.msgs_tx as f64);
        m.set("msgs_rx", self.stats.msgs_rx as f64);
        m.set("bytes_tx", self.stats.bytes_tx as f64);
        m.set("bytes_rx", self.stats.bytes_rx as f64);
        m.set("frames_tx", self.stats.frames_tx as f64);
        m.set("frames_rx", self.stats.frames_rx as f64);
        m
    }
}
