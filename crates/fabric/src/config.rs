//! Fabric configuration and the Table I network presets.

use simkit::SimDuration;

/// Link speed, expressed the way the paper does (Gbps).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Gbps {
    /// Chameleon Cloud `storage_nvme` 10 GbE.
    G10,
    /// Chameleon Cloud 25 GbE.
    G25,
    /// CloudLab r6525 100 GbE.
    G100,
}

impl Gbps {
    /// Link rate in bits per second.
    pub fn bits_per_sec(self) -> f64 {
        match self {
            Gbps::G10 => 10e9,
            Gbps::G25 => 25e9,
            Gbps::G100 => 100e9,
        }
    }

    /// All presets, slowest first (the order figures sweep them).
    pub const ALL: [Gbps; 3] = [Gbps::G10, Gbps::G25, Gbps::G100];

    /// Human label used in figure output ("10", "25", "100").
    pub fn label(self) -> &'static str {
        match self {
            Gbps::G10 => "10",
            Gbps::G25 => "25",
            Gbps::G100 => "100",
        }
    }
}

impl std::fmt::Display for Gbps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} Gbps", self.label())
    }
}

/// Parameters of the fabric model.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Link rate in bits per second (uplink and downlink each).
    pub rate_bps: f64,
    /// One-way propagation delay (host → switch → host).
    pub propagation: SimDuration,
    /// Maximum payload carried per frame (TCP MSS; 1448 for 1500 MTU).
    pub mtu_payload: usize,
    /// Per-frame wire overhead: Ethernet preamble+header+FCS+IFG (38) +
    /// IPv4 (20) + TCP (20).
    pub frame_overhead: usize,
    /// Fixed host cost to transmit one frame (driver/doorbell/DMA setup).
    pub per_frame_tx: SimDuration,
    /// Fixed host cost to receive one frame.
    pub per_frame_rx: SimDuration,
    /// TCP incast goodput collapse: when two or more senders converge
    /// bulk data onto one busy downlink, synchronized loss and recovery
    /// inflate the effective per-message wire time by this factor.
    /// (Classic incast collapse; see e.g. Vasudevan et al., SIGCOMM'09.)
    pub incast_factor: f64,
    /// Minimum frames for a message to count as bulk data for incast.
    pub incast_min_frames: usize,
}

impl FabricConfig {
    /// Preset for a given link speed; other parameters follow the
    /// testbeds in Table I (standard 1500-byte MTU Ethernet, a few µs of
    /// switch latency, sub-µs per-frame host costs).
    pub fn preset(speed: Gbps) -> Self {
        FabricConfig {
            rate_bps: speed.bits_per_sec(),
            propagation: SimDuration::from_micros(5),
            mtu_payload: 1448,
            frame_overhead: 78,
            per_frame_tx: SimDuration::from_nanos(350),
            per_frame_rx: SimDuration::from_nanos(350),
            incast_factor: 2.6,
            incast_min_frames: 2,
        }
    }

    /// Number of frames a message of `bytes` occupies.
    pub fn frames_for(&self, bytes: usize) -> usize {
        if bytes == 0 {
            1 // a bare ACK-sized message still occupies one frame
        } else {
            bytes.div_ceil(self.mtu_payload)
        }
    }

    /// Total bytes on the wire for a message of `bytes` payload.
    pub fn wire_bytes(&self, bytes: usize) -> usize {
        bytes + self.frames_for(bytes) * self.frame_overhead
    }

    /// Serialization time of a message on one link.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        let bits = self.wire_bytes(bytes) as f64 * 8.0;
        SimDuration::from_secs_f64(bits / self.rate_bps)
    }

    /// Host-side per-message TX cost (`frames × per_frame_tx`).
    pub fn tx_cost(&self, bytes: usize) -> SimDuration {
        self.per_frame_tx * self.frames_for(bytes) as u64
    }

    /// Host-side per-message RX cost.
    pub fn rx_cost(&self, bytes: usize) -> SimDuration {
        self.per_frame_rx * self.frames_for(bytes) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_rates() {
        assert_eq!(FabricConfig::preset(Gbps::G10).rate_bps, 10e9);
        assert_eq!(FabricConfig::preset(Gbps::G25).rate_bps, 25e9);
        assert_eq!(FabricConfig::preset(Gbps::G100).rate_bps, 100e9);
    }

    #[test]
    fn frame_math() {
        let c = FabricConfig::preset(Gbps::G10);
        assert_eq!(c.frames_for(0), 1);
        assert_eq!(c.frames_for(1), 1);
        assert_eq!(c.frames_for(1448), 1);
        assert_eq!(c.frames_for(1449), 2);
        assert_eq!(c.frames_for(4096), 3);
        assert_eq!(c.wire_bytes(4096), 4096 + 3 * 78);
    }

    #[test]
    fn serialization_scales_with_rate() {
        let c10 = FabricConfig::preset(Gbps::G10);
        let c100 = FabricConfig::preset(Gbps::G100);
        let s10 = c10.serialization(4096).as_nanos();
        let s100 = c100.serialization(4096).as_nanos();
        // 10x rate => ~10x faster serialization.
        let ratio = s10 as f64 / s100 as f64;
        assert!((ratio - 10.0).abs() < 0.2, "ratio {ratio}");
        // 4KiB + overhead at 10 Gbps ≈ 3.46 µs.
        assert!((3300..3700).contains(&s10), "s10 {s10}ns");
    }

    #[test]
    fn small_message_dominated_by_overhead() {
        let c = FabricConfig::preset(Gbps::G100);
        // A 24-byte completion still pays a full frame overhead + host
        // frame costs — the effect coalescing removes.
        assert_eq!(c.wire_bytes(24), 24 + 78);
        assert_eq!(c.tx_cost(24), SimDuration::from_nanos(350));
    }

    #[test]
    fn labels() {
        assert_eq!(Gbps::G10.label(), "10");
        assert_eq!(format!("{}", Gbps::G100), "100 Gbps");
        assert_eq!(Gbps::ALL.len(), 3);
    }
}
