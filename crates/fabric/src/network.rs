//! The network: endpoints wired through an ideal non-blocking switch,
//! optionally extended to switched multi-hop paths via [`LinkProfile`].

use crate::config::FabricConfig;
use crate::endpoint::{Endpoint, EndpointId};
use simkit::{shared, Kernel, Shared, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::rc::Rc;

/// A time-varying wire-time multiplier: `f(now)` returns the factor by
/// which serialization is inflated at `now` (1.0 = nominal bandwidth).
pub type BandwidthModel = Rc<dyn Fn(SimTime) -> f64>;

/// Typed fabric-plane error. The protocol plane never panics on bad
/// input and neither does the fabric under it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// An endpoint with this name is already registered.
    DuplicateEndpoint(String),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::DuplicateEndpoint(name) => {
                write!(f, "endpoint {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// Path shape of one directed (src, dst) link through a switched
/// topology. The default single-switch star needs no profile at all;
/// cluster topologies install profiles on cross-rack paths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkProfile {
    /// Switch hops on the path (1 = the plain single-switch star). Each
    /// extra hop store-and-forwards the message: one more serialization
    /// plus one more propagation delay.
    pub hops: u32,
    /// Serialization multiplier for the path's bottleneck link
    /// (> 1.0 slows the path; ≤ 1.0 leaves wire time untouched).
    pub bw_factor: f64,
    /// Flat extra one-way latency (e.g. longer cross-rack cabling).
    pub extra_latency: SimDuration,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile {
            hops: 1,
            bw_factor: 1.0,
            extra_latency: SimDuration::ZERO,
        }
    }
}

/// A star-topology fabric. Cheap to clone (shared interior).
#[derive(Clone)]
pub struct Network {
    config: FabricConfig,
    endpoints: Shared<Vec<Shared<Endpoint>>>,
    bw_model: Shared<Option<BandwidthModel>>,
    /// Name → id registry backing duplicate-registration detection; the
    /// first binding wins, later ones are counted and (via
    /// [`Network::register_endpoint`]) rejected with a typed error.
    names: Shared<BTreeMap<String, EndpointId>>,
    dup_registrations: Shared<u64>,
    /// Per-(src, dst) path profiles. Empty in every single-switch
    /// scenario, in which case `send` never consults it.
    links: Shared<BTreeMap<(u32, u32), LinkProfile>>,
}

impl Network {
    /// Create a fabric with the given configuration.
    pub fn new(config: FabricConfig) -> Self {
        Network {
            config,
            endpoints: shared(Vec::new()),
            bw_model: shared(None),
            names: shared(BTreeMap::new()),
            dup_registrations: shared(0),
            links: shared(BTreeMap::new()),
        }
    }

    /// Install a bandwidth-degradation model. Serialization time is
    /// multiplied by `f(now)` whenever that factor exceeds 1.0; absent a
    /// model (or at factor 1.0) the wire time is untouched, bit for bit.
    pub fn set_bandwidth_model(&self, f: BandwidthModel) {
        *self.bw_model.borrow_mut() = Some(f);
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Attach a new endpoint (a node) to the fabric.
    ///
    /// Re-registering a name no longer shadows the prior endpoint in the
    /// name registry silently: the first binding wins and the duplicate
    /// is counted ([`Network::duplicate_registrations`]). Callers that
    /// need the failure surfaced use [`Network::register_endpoint`].
    pub fn add_endpoint(&self, name: impl Into<String>) -> Shared<Endpoint> {
        let name = name.into();
        let mut eps = self.endpoints.borrow_mut();
        let id = EndpointId(eps.len() as u32);
        match self.names.borrow_mut().entry(name.clone()) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(id);
            }
            std::collections::btree_map::Entry::Occupied(_) => {
                *self.dup_registrations.borrow_mut() += 1;
            }
        }
        let ep = shared(Endpoint::new(id, name));
        eps.push(ep.clone());
        ep
    }

    /// Checked endpoint registration: a duplicate name is a typed error
    /// (counted, nothing overwritten), never a silent re-bind. The
    /// cluster plane registers every node through this entry point.
    pub fn register_endpoint(
        &self,
        name: impl Into<String>,
    ) -> Result<Shared<Endpoint>, NetworkError> {
        let name = name.into();
        if self.names.borrow().contains_key(&name) {
            *self.dup_registrations.borrow_mut() += 1;
            return Err(NetworkError::DuplicateEndpoint(name));
        }
        Ok(self.add_endpoint(name))
    }

    /// Endpoint registered under `name`, if any (first binding wins).
    pub fn endpoint_by_name(&self, name: &str) -> Option<Shared<Endpoint>> {
        self.names.borrow().get(name).map(|id| self.endpoint(*id))
    }

    /// How many duplicate-name registrations were attempted.
    pub fn duplicate_registrations(&self) -> u64 {
        *self.dup_registrations.borrow()
    }

    /// Install a path profile on the directed (src, dst) link. Profiles
    /// are consulted by `send` only once at least one is installed, so
    /// single-switch scenarios stay bit-identical.
    pub fn set_link_profile(&self, src: EndpointId, dst: EndpointId, profile: LinkProfile) {
        self.links.borrow_mut().insert((src.0, dst.0), profile);
    }

    /// The profile installed on (src, dst), if any.
    pub fn link_profile(&self, src: EndpointId, dst: EndpointId) -> Option<LinkProfile> {
        self.links.borrow().get(&(src.0, dst.0)).copied()
    }

    /// Number of attached endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.borrow().len()
    }

    /// True when no endpoints are attached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Endpoint by id.
    pub fn endpoint(&self, id: EndpointId) -> Shared<Endpoint> {
        self.endpoints.borrow()[id.0 as usize].clone()
    }

    /// Transfer `bytes` of payload from `src` to `dst`, invoking
    /// `on_delivered` when the last frame has been received.
    ///
    /// The path is: src TX-NIC → src uplink → dst downlink (store-and-
    /// forward at the switch) → propagation → dst RX-NIC. Every stage is
    /// a FIFO single server, so concurrent transfers queue exactly as
    /// they would on real ports. Returns the delivery instant.
    pub fn send(
        &self,
        k: &mut Kernel,
        src: &Shared<Endpoint>,
        dst: &Shared<Endpoint>,
        bytes: usize,
        on_delivered: impl FnOnce(&mut Kernel) + 'static,
    ) -> SimTime {
        let cfg = &self.config;
        let frames = cfg.frames_for(bytes) as u64;
        let mut ser = cfg.serialization(bytes);
        let now = k.now();
        if let Some(f) = self.bw_model.borrow().as_ref() {
            let factor = f(now);
            if factor > 1.0 {
                ser = simkit::SimDuration::from_secs_f64(ser.as_secs_f64() * factor);
            }
        }
        // Multi-hop path shape: each extra switch hop store-and-forwards
        // (one more serialization + propagation), plus any flat extra
        // latency. The map is empty outside cluster topologies, so the
        // single-switch path never consults it.
        let mut extra_hops = 0u64;
        let mut extra_latency = SimDuration::ZERO;
        if !self.links.borrow().is_empty() {
            let key = (src.borrow().id.0, dst.borrow().id.0);
            if let Some(p) = self.links.borrow().get(&key) {
                if p.bw_factor > 1.0 {
                    ser = simkit::SimDuration::from_secs_f64(ser.as_secs_f64() * p.bw_factor);
                }
                extra_hops = u64::from(p.hops.saturating_sub(1));
                extra_latency = p.extra_latency;
            }
        }

        let tx_done = {
            let mut s = src.borrow_mut();
            s.stats.msgs_tx += 1;
            s.stats.bytes_tx += bytes as u64;
            s.stats.frames_tx += frames;
            let nic = s.tx_nic.reserve(now, cfg.tx_cost(bytes));
            s.uplink.reserve(nic.finish, ser).finish
        };

        let rx_done = {
            let mut d = dst.borrow_mut();
            d.stats.msgs_rx += 1;
            d.stats.bytes_rx += bytes as u64;
            d.stats.frames_rx += frames;
            // Incast detection: track the distinct sources feeding this
            // downlink within its current busy period. Bulk data from
            // two or more concurrent sources suffers TCP incast goodput
            // collapse — modelled as inflated effective wire time.
            let bulk = frames as usize >= cfg.incast_min_frames;
            let mut ser_eff = ser;
            if bulk {
                if d.downlink.backlog(now).is_zero() {
                    d.downlink_senders.clear();
                }
                let sid = src.borrow().id;
                if !d.downlink_senders.contains(&sid) {
                    d.downlink_senders.push(sid);
                }
                if d.downlink_senders.len() >= 2 {
                    ser_eff =
                        simkit::SimDuration::from_secs_f64(ser.as_secs_f64() * cfg.incast_factor);
                }
            }
            // Switch forwards the stream as it arrives; the downlink can
            // start no earlier than the uplink finished serializing
            // (store-and-forward of the final frame).
            let wire = d.downlink.reserve(tx_done, ser_eff);
            let arrival = wire.finish
                + cfg.propagation
                + (ser + cfg.propagation) * extra_hops
                + extra_latency;
            d.rx_nic.reserve(arrival, cfg.rx_cost(bytes)).finish
        };

        k.schedule_at(rx_done, on_delivered);
        rx_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Gbps;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn setup(speed: Gbps) -> (Kernel, Network, Shared<Endpoint>, Shared<Endpoint>) {
        let k = Kernel::new(1);
        let net = Network::new(FabricConfig::preset(speed));
        let a = net.add_endpoint("a");
        let b = net.add_endpoint("b");
        (k, net, a, b)
    }

    #[test]
    fn single_message_latency_breakdown() {
        let (mut k, net, a, b) = setup(Gbps::G100);
        let cfg = net.config().clone();
        let delivered = Rc::new(RefCell::new(None));
        let d = delivered.clone();
        let at = net.send(&mut k, &a, &b, 4096, move |k| {
            *d.borrow_mut() = Some(k.now());
        });
        k.run_to_completion();
        assert_eq!(*delivered.borrow(), Some(at));
        // tx nic + 2x serialization + propagation + rx nic
        let expect = SimTime::ZERO
            + cfg.tx_cost(4096)
            + cfg.serialization(4096)
            + cfg.serialization(4096)
            + cfg.propagation
            + cfg.rx_cost(4096);
        assert_eq!(at, expect);
    }

    #[test]
    fn bandwidth_model_inflates_serialization_inside_window() {
        let (mut k, net, a, b) = setup(Gbps::G100);
        let cfg = net.config().clone();
        let nominal = net.send(&mut k, &a, &b, 4096, |_| {});
        // Degrade to half bandwidth from 1ms onward.
        net.set_bandwidth_model(Rc::new(|now: SimTime| {
            if now >= SimTime::from_millis(1) {
                2.0
            } else {
                1.0
            }
        }));
        k.run_to_completion();
        // Outside the window (factor 1.0) the path is bit-identical.
        let before = net.send(&mut k, &a, &b, 4096, |_| {});
        assert_eq!(before.since(k.now()), nominal.since(SimTime::ZERO));
        // Inside the window both serialization stages double.
        let mut k2 = Kernel::new(1);
        k2.schedule_at(SimTime::from_millis(2), |_| {});
        k2.run_to_completion();
        let slowed = net.send(&mut k2, &a, &b, 4096, |_| {});
        let ser = cfg.serialization(4096);
        let expect = k2.now()
            + cfg.tx_cost(4096)
            + simkit::SimDuration::from_secs_f64(ser.as_secs_f64() * 2.0)
            + simkit::SimDuration::from_secs_f64(ser.as_secs_f64() * 2.0)
            + cfg.propagation
            + cfg.rx_cost(4096);
        assert_eq!(slowed, expect);
    }

    #[test]
    fn messages_queue_fifo_on_shared_uplink() {
        let (mut k, net, a, b) = setup(Gbps::G10);
        let times = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let t = times.clone();
            net.send(&mut k, &a, &b, 4096, move |k| {
                t.borrow_mut().push(k.now());
            });
        }
        k.run_to_completion();
        let times = times.borrow();
        assert_eq!(times.len(), 3);
        // Deliveries are spaced by at least one serialization time each.
        let ser = net.config().serialization(4096);
        assert!(times[1].since(times[0]) >= ser);
        assert!(times[2].since(times[1]) >= ser);
    }

    #[test]
    fn distinct_endpoint_pairs_do_not_interfere() {
        let k = Kernel::new(1);
        let net = Network::new(FabricConfig::preset(Gbps::G10));
        let a = net.add_endpoint("a");
        let b = net.add_endpoint("b");
        let c = net.add_endpoint("c");
        let d = net.add_endpoint("d");
        let mut k = k;
        let t_ab = net.send(&mut k, &a, &b, 65536, |_| {});
        let t_cd = net.send(&mut k, &c, &d, 65536, |_| {});
        // Same size, same start, disjoint links: identical delivery time.
        assert_eq!(t_ab, t_cd);
    }

    #[test]
    fn two_senders_share_receiver_downlink() {
        let k = Kernel::new(1);
        let net = Network::new(FabricConfig::preset(Gbps::G10));
        let a = net.add_endpoint("a");
        let b = net.add_endpoint("b");
        let dst = net.add_endpoint("dst");
        let mut k = k;
        let t1 = net.send(&mut k, &a, &dst, 8192, |_| {});
        let t2 = net.send(&mut k, &b, &dst, 8192, |_| {});
        // Second transfer must queue behind the first on dst's downlink.
        assert!(t2 > t1);
        assert!(t2.since(t1) >= net.config().serialization(8192));
    }

    #[test]
    fn faster_fabric_delivers_sooner() {
        let (mut k10, net10, a10, b10) = setup(Gbps::G10);
        let t10 = net10.send(&mut k10, &a10, &b10, 1 << 20, |_| {});
        let (mut k100, net100, a100, b100) = setup(Gbps::G100);
        let t100 = net100.send(&mut k100, &a100, &b100, 1 << 20, |_| {});
        assert!(t100 < t10);
    }

    #[test]
    fn stats_account_messages_and_frames() {
        let (mut k, net, a, b) = setup(Gbps::G25);
        net.send(&mut k, &a, &b, 4096, |_| {});
        net.send(&mut k, &a, &b, 24, |_| {});
        k.run_to_completion();
        let a = a.borrow();
        let b = b.borrow();
        assert_eq!(a.stats.msgs_tx, 2);
        assert_eq!(a.stats.bytes_tx, 4096 + 24);
        assert_eq!(a.stats.frames_tx, 3 + 1);
        assert_eq!(b.stats.msgs_rx, 2);
        assert_eq!(b.stats.frames_rx, 4);
        assert_eq!(b.stats.msgs_tx, 0);
    }

    #[test]
    fn utilization_reflects_load() {
        let (mut k, net, a, b) = setup(Gbps::G10);
        for _ in 0..100 {
            net.send(&mut k, &a, &b, 4096, |_| {});
        }
        k.run_to_completion();
        let now = k.now();
        let up = a.borrow().uplink_utilization(now);
        assert!(
            up > 0.8,
            "back-to-back sends should keep the link busy: {up}"
        );
        assert_eq!(a.borrow().downlink_utilization(now), 0.0);
    }

    #[test]
    fn incast_inflates_bulk_transfers_from_multiple_senders() {
        // One sender saturating a downlink: no collapse.
        let k = Kernel::new(1);
        let net = Network::new(FabricConfig::preset(Gbps::G10));
        let a = net.add_endpoint("a");
        let dst = net.add_endpoint("dst");
        let mut k = k;
        let mut last = net.send(&mut k, &a, &dst, 4096, |_| {});
        for _ in 0..9 {
            last = net.send(&mut k, &a, &dst, 4096, |_| {});
        }
        let single_sender_span = last.as_nanos();

        // Two senders converging: collapse inflates the same byte volume.
        let k2 = Kernel::new(1);
        let net2 = Network::new(FabricConfig::preset(Gbps::G10));
        let a2 = net2.add_endpoint("a");
        let b2 = net2.add_endpoint("b");
        let dst2 = net2.add_endpoint("dst");
        let mut k2 = k2;
        let mut last2 = net2.send(&mut k2, &a2, &dst2, 4096, |_| {});
        for i in 0..9 {
            let src = if i % 2 == 0 { &b2 } else { &a2 };
            last2 = net2.send(&mut k2, src, &dst2, 4096, |_| {});
        }
        let incast_span = last2.as_nanos();
        let ratio = incast_span as f64 / single_sender_span as f64;
        assert!(
            ratio > 1.8,
            "incast should inflate delivery times: {ratio:.2} ({incast_span} vs {single_sender_span})"
        );
    }

    #[test]
    fn small_messages_do_not_trigger_incast() {
        // Completions (single-frame) from two senders don't collapse.
        let k = Kernel::new(1);
        let net = Network::new(FabricConfig::preset(Gbps::G10));
        let a = net.add_endpoint("a");
        let b = net.add_endpoint("b");
        let dst = net.add_endpoint("dst");
        let mut k = k;
        let t1 = net.send(&mut k, &a, &dst, 24, |_| {});
        let t2 = net.send(&mut k, &b, &dst, 24, |_| {});
        // Second delivery queues behind the first by the per-frame RX
        // cost (which exceeds the 102-byte wire time) — crucially NOT by
        // an incast-inflated serialization.
        let cfg = net.config();
        assert_eq!(t2.since(t1), cfg.rx_cost(24));
    }

    #[test]
    fn incast_state_resets_when_downlink_drains() {
        let k = Kernel::new(1);
        let net = Network::new(FabricConfig::preset(Gbps::G10));
        let a = net.add_endpoint("a");
        let b = net.add_endpoint("b");
        let dst = net.add_endpoint("dst");
        let mut k = k;
        // Trigger incast.
        net.send(&mut k, &a, &dst, 4096, |_| {});
        net.send(&mut k, &b, &dst, 4096, |_| {});
        k.run_to_completion();
        // Long idle: the busy period ended. A single sender afterwards
        // pays plain serialization.
        let start = k.now();
        let t = net.send(&mut k, &a, &dst, 4096, |_| {});
        let cfg = net.config();
        let plain = cfg.tx_cost(4096)
            + cfg.serialization(4096)
            + cfg.serialization(4096)
            + cfg.propagation
            + cfg.rx_cost(4096);
        assert_eq!(t.since(start), plain, "no residual incast inflation");
    }

    #[test]
    fn duplicate_registration_is_a_typed_error_and_counted() {
        let net = Network::new(FabricConfig::preset(Gbps::G100));
        let a = net.register_endpoint("node-a").expect("fresh name");
        assert_eq!(net.duplicate_registrations(), 0);
        let err = net.register_endpoint("node-a").unwrap_err();
        assert_eq!(err, NetworkError::DuplicateEndpoint("node-a".into()));
        assert_eq!(net.duplicate_registrations(), 1);
        // Nothing overwritten: the registry still resolves to the first.
        let by_name = net.endpoint_by_name("node-a").expect("registered");
        assert_eq!(by_name.borrow().id, a.borrow().id);
        // The infallible path also counts (no silent shadowing).
        net.add_endpoint("node-a");
        assert_eq!(net.duplicate_registrations(), 2);
        assert_eq!(by_name.borrow().id, a.borrow().id);
    }

    #[test]
    fn link_profile_adds_store_and_forward_hops() {
        let (mut k, net, a, b) = setup(Gbps::G100);
        let cfg = net.config().clone();
        // Profile-free delivery first: the baseline single-switch path.
        let base = net.send(&mut k, &a, &b, 4096, |_| {});
        let plain = SimTime::ZERO
            + cfg.tx_cost(4096)
            + cfg.serialization(4096)
            + cfg.serialization(4096)
            + cfg.propagation
            + cfg.rx_cost(4096);
        assert_eq!(base, plain);
        // A 3-hop path with flat extra latency: two extra
        // store-and-forward stages (serialization + propagation each).
        let (mut k2, net2, a2, b2) = setup(Gbps::G100);
        net2.set_link_profile(
            a2.borrow().id,
            b2.borrow().id,
            LinkProfile {
                hops: 3,
                bw_factor: 1.0,
                extra_latency: SimDuration::from_micros(2),
            },
        );
        let multi = net2.send(&mut k2, &a2, &b2, 4096, |_| {});
        let expect =
            plain + (cfg.serialization(4096) + cfg.propagation) * 2 + SimDuration::from_micros(2);
        assert_eq!(multi, expect);
        // The reverse direction carries no profile: plain path cost.
        let (mut k3, net3, a3, b3) = setup(Gbps::G100);
        net3.set_link_profile(a3.borrow().id, b3.borrow().id, LinkProfile::default());
        assert_eq!(net3.send(&mut k3, &b3, &a3, 4096, |_| {}), plain);
    }

    #[test]
    fn link_profile_bw_factor_inflates_serialization() {
        let (mut k, net, a, b) = setup(Gbps::G100);
        let cfg = net.config().clone();
        net.set_link_profile(
            a.borrow().id,
            b.borrow().id,
            LinkProfile {
                hops: 1,
                bw_factor: 2.0,
                extra_latency: SimDuration::ZERO,
            },
        );
        let slowed = net.send(&mut k, &a, &b, 4096, |_| {});
        let ser2 = SimDuration::from_secs_f64(cfg.serialization(4096).as_secs_f64() * 2.0);
        let expect =
            SimTime::ZERO + cfg.tx_cost(4096) + ser2 + ser2 + cfg.propagation + cfg.rx_cost(4096);
        assert_eq!(slowed, expect);
    }

    #[test]
    fn sustained_throughput_matches_line_rate() {
        // Pump 4KiB messages back-to-back for 10ms of virtual time and
        // check goodput against the analytic line rate.
        let (mut k, net, a, b) = setup(Gbps::G10);
        let delivered = Rc::new(RefCell::new(0u64));
        let n = 700u64; // ~2.9ms serialization each at 10G => ~2.4s... keep small
        for _ in 0..n {
            let d = delivered.clone();
            net.send(&mut k, &a, &b, 4096, move |_| {
                *d.borrow_mut() += 1;
            });
        }
        k.run_to_completion();
        assert_eq!(*delivered.borrow(), n);
        let elapsed = k.now().as_secs_f64();
        let goodput_bps = (n * 4096) as f64 * 8.0 / elapsed;
        let wire_eff = 4096.0 / net.config().wire_bytes(4096) as f64;
        let expected = 10e9 * wire_eff;
        let err = (goodput_bps - expected).abs() / expected;
        assert!(err < 0.05, "goodput {goodput_bps:.3e} vs {expected:.3e}");
    }
}
