//! # fabric — Ethernet fabric model for NVMe-over-Fabrics
//!
//! Substitutes the paper's testbed networks (Chameleon Cloud 10/25 Gbps,
//! CloudLab 100 Gbps, Table I) with a discrete-event model that captures
//! the three effects the evaluation depends on:
//!
//! 1. **Serialization delay** — a message occupies its links for
//!    `bytes × 8 / rate`; 4 KiB data PDUs dominate, so 10 Gbps saturates
//!    at ≈290K 4K-read IOPS.
//! 2. **Per-packet overhead** — every MTU-sized frame pays fixed NIC/stack
//!    costs and wire framing bytes; thousands of small completion packets
//!    per second are what NVMe-oPF's coalescing eliminates.
//! 3. **FIFO queueing** — links are work-conserving single servers
//!    ([`simkit::Resource`]); concurrent tenants' traffic queues behind
//!    each other exactly as on a switch port.
//!
//! Topology: every [`Endpoint`] owns a duplex attachment (uplink +
//! downlink) to an ideal non-blocking switch, matching the star topology
//! of the paper's testbeds. A transfer from A to B crosses A's TX NIC,
//! A's uplink, B's downlink, the propagation delay, and B's RX NIC.
//! Cluster topologies layer [`LinkProfile`]s on top: per-(src, dst)
//! multi-hop paths with extra store-and-forward stages and bottleneck
//! bandwidth factors, consulted only when at least one is installed.

pub mod config;
pub mod endpoint;
pub mod network;

pub use config::{FabricConfig, Gbps};
pub use endpoint::{Endpoint, EndpointId, EndpointStats};
pub use network::{BandwidthModel, LinkProfile, Network, NetworkError};
