//! # nvme-opf — umbrella crate
//!
//! Re-exports the full NVMe-oPF reproduction workspace behind one
//! dependency. See the README for an architecture overview and the
//! individual crates for details:
//!
//! * [`simkit`] — deterministic discrete-event simulation kernel.
//! * [`queues`] — lock-free CID queues used by the priority managers.
//! * [`fabric`] — 10/25/100 Gbps Ethernet fabric model.
//! * [`nvme`] — NVMe SSD controller/device model.
//! * [`nvmf`] — NVMe-over-Fabrics (TCP) runtime: the SPDK-style baseline.
//! * [`opf`] — NVMe-oPF priority schemes (the paper's contribution).
//! * [`workload`] — perf-style workload generators and metrics.
//! * [`h5`] — minimal HDF5-like format and h5bench-style kernels.

pub use fabric;
pub use h5;
pub use nvme;
pub use nvmf;
pub use opf;
pub use queues;
pub use simkit;
pub use workload;
