//! Cross-crate integration tests: the full stack from application file
//! format down to simulated flash, over the fabric, under both runtimes.

use bytes::Bytes;
use nvme_opf::fabric::{FabricConfig, Gbps, Network};
use nvme_opf::h5::format::Dtype;
use nvme_opf::h5::vol::{run_extent, BlockSource, RankInitiator};
use nvme_opf::h5::{H5File, MemStore, NamespaceStore};
use nvme_opf::nvme::{FlashProfile, NvmeDevice, Opcode, BLOCK_SIZE};
use nvme_opf::nvmf::initiator::TargetRx;
use nvme_opf::nvmf::{CpuCosts, PduRx};
use nvme_opf::opf::{
    OpfInitiator, OpfInitiatorConfig, OpfTarget, OpfTargetConfig, ReqClass, WindowPolicy,
};
use nvme_opf::simkit::{shared, Kernel, Shared, Tracer};
use std::cell::RefCell;
use std::rc::Rc;

/// Wire one NVMe-oPF initiator + target + device with real data storage.
fn opf_rig(window: u32) -> (Kernel, Shared<OpfInitiator>, Shared<NvmeDevice>) {
    let k = Kernel::new(2024);
    let net = Network::new(FabricConfig::preset(Gbps::G100));
    let tep = net.add_endpoint("tgt");
    let iep = net.add_endpoint("ini");
    let device = shared(NvmeDevice::new(FlashProfile::cl_ssd(), 1 << 20, 11));
    let target = shared(OpfTarget::new(
        0,
        net.clone(),
        tep.clone(),
        device.clone(),
        CpuCosts::cl(),
        OpfTargetConfig::default(),
        Tracer::disabled(),
    ));
    let t2 = target.clone();
    let target_rx: TargetRx = Rc::new(move |k, from, pdu| OpfTarget::on_pdu(&t2, k, from, pdu));
    let ini = shared(OpfInitiator::new(
        0,
        128,
        net.clone(),
        iep.clone(),
        tep,
        target_rx,
        CpuCosts::cl(),
        OpfInitiatorConfig {
            window: WindowPolicy::Static(window),
            ..OpfInitiatorConfig::default()
        },
        Tracer::disabled(),
    ));
    let i2 = ini.clone();
    let rx: PduRx = Rc::new(move |k, pdu| OpfInitiator::on_pdu(&i2, k, pdu));
    target.borrow_mut().connect(0, iep, rx);
    (k, ini, device)
}

/// An HDF5-style file written across the simulated fabric — metadata as
/// latency-sensitive I/O, particle data as coalesced throughput-critical
/// I/O — must be byte-for-byte readable straight off the device
/// namespace afterwards.
#[test]
fn h5_file_written_over_fabric_is_readable_from_device() {
    let (mut k, ini, device) = opf_rig(8);
    let particles: Vec<u8> = (0..50_000u32)
        .flat_map(|i| (i as f32).sqrt().to_le_bytes())
        .collect();

    // Plan the file locally (the VOL's metadata mirror), including a
    // provenance attribute (one more metadata block image to ship).
    let mut mirror = H5File::create(MemStore::new(256)).unwrap();
    let plan = mirror
        .plan_dataset("/particles", Dtype::F32, 50_000)
        .unwrap();
    let attr_write = mirror
        .set_attr("/particles", "units", b"sqrt-index")
        .unwrap();

    let rank = Rc::new(RankInitiator::Opf(ini.clone()));
    let done = Rc::new(RefCell::new(false));

    // Metadata first (LS), then the bulk extent (TC) with REAL bytes.
    let mut meta: Vec<(u64, Bytes)> = plan
        .meta
        .iter()
        .map(|m| (m.lba, Bytes::from(m.block.clone())))
        .collect();
    meta.push((attr_write.lba, Bytes::from(attr_write.block)));
    fn write_meta(
        rank: Rc<RankInitiator>,
        k: &mut Kernel,
        mut meta: std::collections::VecDeque<(u64, Bytes)>,
        next: Box<dyn FnOnce(&mut Kernel)>,
    ) {
        match meta.pop_front() {
            None => next(k),
            Some((lba, block)) => {
                let r2 = rank.clone();
                rank.submit(
                    k,
                    ReqClass::LatencySensitive,
                    Opcode::Write,
                    lba,
                    Some(block),
                    Box::new(move |k, out| {
                        assert!(out.status.is_ok());
                        write_meta(r2, k, meta, next);
                    }),
                )
                .unwrap();
            }
        }
    }

    let rank2 = rank.clone();
    let d2 = done.clone();
    let data = Bytes::from(particles.clone());
    let data_lba = plan.data_lba;
    let data_blocks = plan.data_blocks;
    write_meta(
        rank.clone(),
        &mut k,
        meta.into_iter().collect(),
        Box::new(move |k| {
            run_extent(
                rank2,
                k,
                ReqClass::ThroughputCritical,
                Opcode::Write,
                data_lba,
                data_blocks,
                Some(BlockSource::Data(data)),
                None,
                Box::new(move |_| *d2.borrow_mut() = true),
            );
        }),
    );
    k.run_to_completion();
    assert!(*done.borrow(), "write must complete");

    // Re-open the file straight from the device namespace (no fabric).
    let mut dev = device.borrow_mut();
    let store = NamespaceStore::new(dev.namespace_mut());
    let file = H5File::open(store).expect("file written over fabric opens");
    let read_back = file.read_dataset("/particles").expect("dataset readable");
    assert_eq!(
        read_back, particles,
        "data integrity through the full stack"
    );
    assert_eq!(
        file.get_attr("/particles", "units")
            .expect("attribute readable"),
        b"sqrt-index",
        "attributes survive the fabric round trip"
    );
}

/// The same dataset read back over the fabric (TC coalesced reads)
/// matches what was written.
#[test]
fn tc_reads_over_fabric_return_written_bytes() {
    let (mut k, ini, device) = opf_rig(4);
    // Seed the namespace directly with a pattern.
    let blocks = 16u64;
    for lba in 0..blocks {
        let block: Vec<u8> = (0..BLOCK_SIZE)
            .map(|i| ((lba as usize * 7 + i * 13) % 251) as u8)
            .collect();
        device
            .borrow_mut()
            .namespace_mut()
            .write(lba, &block)
            .unwrap();
    }
    let got: Rc<RefCell<Vec<Option<Vec<u8>>>>> = Rc::new(RefCell::new(vec![None; blocks as usize]));
    for lba in 0..blocks {
        let g = got.clone();
        OpfInitiator::submit(
            &ini,
            &mut k,
            ReqClass::ThroughputCritical,
            Opcode::Read,
            lba,
            1,
            None,
            Box::new(move |_, out| {
                assert!(out.status.is_ok());
                g.borrow_mut()[lba as usize] = out.data.map(|b| b.to_vec());
            }),
        )
        .unwrap();
    }
    k.run_to_completion();
    for lba in 0..blocks {
        let expect: Vec<u8> = (0..BLOCK_SIZE)
            .map(|i| ((lba as usize * 7 + i * 13) % 251) as u8)
            .collect();
        assert_eq!(
            got.borrow()[lba as usize].as_deref(),
            Some(&expect[..]),
            "block {lba}"
        );
    }
}
