//! Headline-claim regression tests: quick (scaled-down) versions of the
//! paper's main observations, run through the full workload harness.
//! These protect the calibration — if a refactor breaks a mechanism
//! (coalescing, bypass, backpressure, incast), a shape assertion fails.

use nvme_opf::fabric::Gbps;
use nvme_opf::workload::{run, Mix, RunResult, RuntimeKind, Scenario};

fn quick(runtime: RuntimeKind, speed: Gbps, mix: Mix, ls: usize, tc: usize) -> RunResult {
    let mut sc = Scenario::ratio(runtime, speed, mix, ls, tc);
    sc.warmup_s = 0.05;
    sc.measure_s = 0.2;
    run(&sc)
}

/// Observation 2 / abstract: ~2.9X read throughput at 10 Gbps with
/// 5 tenants (1 LS : 4 TC). We assert the shape: at least 2.3X.
#[test]
fn obs2_read_10g_multiple_of_spdk() {
    let s = quick(RuntimeKind::Spdk, Gbps::G10, Mix::READ, 1, 4);
    let o = quick(RuntimeKind::Opf, Gbps::G10, Mix::READ, 1, 4);
    let ratio = o.tc_iops / s.tc_iops;
    assert!(
        ratio > 2.3,
        "10G read 1:4 should be ~2.9X (paper): got {ratio:.2}X ({:.0} vs {:.0})",
        o.tc_iops,
        s.tc_iops
    );
}

/// Observation 2: NVMe-oPF read throughput is comparable across
/// 10/25/100 Gbps ("a suitable solution to achieve performance similar
/// to 100 Gbps with just 10 Gbps").
#[test]
fn obs2_opf_read_comparable_across_speeds() {
    let r10 = quick(RuntimeKind::Opf, Gbps::G10, Mix::READ, 1, 4);
    let r100 = quick(RuntimeKind::Opf, Gbps::G100, Mix::READ, 1, 4);
    let ratio = r10.tc_iops / r100.tc_iops;
    assert!(
        ratio > 0.85,
        "oPF@10G should be close to oPF@100G for reads: {ratio:.2}"
    );
}

/// Observation 2: write throughput gains ~33% at 100 Gbps but none at
/// 10 Gbps (network-bound).
#[test]
fn obs2_write_gains_at_100g_not_10g() {
    let s100 = quick(RuntimeKind::Spdk, Gbps::G100, Mix::WRITE, 1, 4);
    let o100 = quick(RuntimeKind::Opf, Gbps::G100, Mix::WRITE, 1, 4);
    let g100 = o100.tc_iops / s100.tc_iops;
    assert!(
        g100 > 1.2 && g100 < 1.7,
        "100G write gain should be ~1.3-1.4X: {g100:.2}"
    );

    let s10 = quick(RuntimeKind::Spdk, Gbps::G10, Mix::WRITE, 1, 4);
    let o10 = quick(RuntimeKind::Opf, Gbps::G10, Mix::WRITE, 1, 4);
    let g10 = o10.tc_iops / s10.tc_iops;
    assert!(
        g10 < 1.15,
        "10G write should show no benefit (incast-bound): {g10:.2}"
    );
}

/// Observation 3: LS tail latency drops under NVMe-oPF for reads, and
/// SPDK's tail grows with TC tenant count while NVMe-oPF's stays flat.
#[test]
fn obs3_tail_latency_flat_for_opf() {
    let s1 = quick(RuntimeKind::Spdk, Gbps::G100, Mix::READ, 1, 1);
    let s4 = quick(RuntimeKind::Spdk, Gbps::G100, Mix::READ, 1, 4);
    let o1 = quick(RuntimeKind::Opf, Gbps::G100, Mix::READ, 1, 1);
    let o4 = quick(RuntimeKind::Opf, Gbps::G100, Mix::READ, 1, 4);
    // SPDK tail inflates with tenants (back-of-the-line waiting).
    assert!(
        s4.ls_p9999_us > s1.ls_p9999_us * 2.0,
        "SPDK tail should grow with TC tenants: {} -> {}",
        s1.ls_p9999_us,
        s4.ls_p9999_us
    );
    // NVMe-oPF tail stays roughly flat (bypass).
    assert!(
        o4.ls_p9999_us < o1.ls_p9999_us * 1.5,
        "oPF tail should stay flat: {} -> {}",
        o1.ls_p9999_us,
        o4.ls_p9999_us
    );
    // And is lower than SPDK's at every ratio.
    assert!(o1.ls_p9999_us < s1.ls_p9999_us);
    assert!(o4.ls_p9999_us < s4.ls_p9999_us);
}

/// Figure 6(c): coalescing slashes completion-notification counts —
/// with window 32, NVMe-oPF sends fewer notifications for a QD-128
/// stream than SPDK sends at queue depth 1.
#[test]
fn fig6c_notification_reduction() {
    let s = quick(RuntimeKind::Spdk, Gbps::G100, Mix::READ, 0, 1);
    let o = quick(RuntimeKind::Opf, Gbps::G100, Mix::READ, 0, 1);
    let s_per_req = s.notifications as f64 / s.completed as f64;
    let o_per_req = o.notifications as f64 / o.completed as f64;
    assert!(
        (s_per_req - 1.0).abs() < 0.05,
        "SPDK: one notification per request, got {s_per_req:.3}"
    );
    assert!(
        o_per_req < 0.06,
        "oPF at W=32: ~1/32 notifications per request, got {o_per_req:.3}"
    );
    // The same story told by the unified snapshot: the target's
    // completions-per-response ratio is ~1 for SPDK and approaches the
    // coalescing window for NVMe-oPF.
    let s_ratio = s.metrics.get("pair0.tgt.coalesce_ratio").unwrap();
    let o_ratio = o.metrics.get("pair0.tgt.coalesce_ratio").unwrap();
    assert!(
        (s_ratio - 1.0).abs() < 0.05,
        "SPDK target coalesce_ratio ~1: {s_ratio:.3}"
    );
    assert!(
        o_ratio > 16.0,
        "oPF target coalesce_ratio should approach W=32: {o_ratio:.3}"
    );
}

/// Observation 4 shape: scale-out throughput grows with node pairs for
/// both runtimes, and NVMe-oPF stays ahead.
#[test]
fn obs4_scale_out_monotone() {
    let mut results = Vec::new();
    for runtime in [RuntimeKind::Spdk, RuntimeKind::Opf] {
        for pairs in [1usize, 3] {
            let mut sc = Scenario::ratio(runtime, Gbps::G100, Mix::READ, 0, 4);
            sc.pairs = pairs;
            sc.separate_nodes = false;
            sc.warmup_s = 0.05;
            sc.measure_s = 0.15;
            results.push(run(&sc).tc_iops);
        }
    }
    let (s1, s3, o1, o3) = (results[0], results[1], results[2], results[3]);
    assert!(s3 > s1 * 2.5, "SPDK scales with pairs: {s1:.0} -> {s3:.0}");
    assert!(o3 > o1 * 2.5, "oPF scales with pairs: {o1:.0} -> {o3:.0}");
    assert!(o1 > s1 && o3 > s3, "oPF ahead at every scale");
}

/// Full determinism across the entire stack: identical scenarios produce
/// bit-identical metrics.
#[test]
fn whole_stack_determinism() {
    let a = quick(RuntimeKind::Opf, Gbps::G25, Mix::MIXED, 2, 3);
    let b = quick(RuntimeKind::Opf, Gbps::G25, Mix::MIXED, 2, 3);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.notifications, b.notifications);
    assert_eq!(a.events, b.events);
    assert_eq!(a.ls_p9999_us, b.ls_p9999_us);
    // The unified snapshot covers every layer's counters — if any
    // component leaks nondeterminism (hash order, wall clock), the
    // serialized snapshots diverge here.
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
}

/// Tentpole observability check: one run's [`RunResult::metrics`]
/// snapshot exposes every layer of the stack under stable prefixed
/// names, and its counters agree with the scalar results.
#[test]
fn unified_snapshot_covers_all_layers() {
    let r = quick(RuntimeKind::Opf, Gbps::G100, Mix::READ, 1, 2);
    let m = &r.metrics;
    let get = |name: &str| {
        m.get(name)
            .unwrap_or_else(|| panic!("snapshot missing {name:?}"))
    };

    // Workload layer: scalar results mirrored into the snapshot.
    assert_eq!(get("completed"), r.completed as f64);
    assert_eq!(get("tc.iops"), r.tc_iops);
    assert_eq!(get("ls.p9999_us"), r.ls_p9999_us);

    // Fabric layer: target-side link was actually used.
    assert!(get("pair0.tgt_ep.link.uplink_util") > 0.0);
    assert!(get("pair0.tgt_ep.bytes_tx") > 0.0);

    // NVMe layer: flash units did work, reads were all reads.
    assert!(get("pair0.dev.flash.busy_fraction") > 0.0);
    assert!(get("pair0.dev.reads") > 0.0);
    assert_eq!(get("pair0.dev.writes"), 0.0);

    // NVMe-oPF target layer: per-tenant TC queue depths exist for each
    // initiator (tenant 0 is LS, 1-2 are TC), plus PDU counters.
    for t in 0..3 {
        assert!(m
            .get(&format!("pair0.tgt.tenant{t}.tc_queue_depth"))
            .is_some());
    }
    assert!(get("pair0.tgt.pdu.cmds_rx") > 0.0);
    assert!(get("pair0.tgt.ls_bypassed") > 0.0, "LS bypass engaged");
    assert_eq!(get("pair0.tgt.protocol_errors"), 0.0);

    // Initiator layer: TC initiators measured drain latency; the
    // coalesce ratio seen initiator-side approaches the window.
    let drains: f64 = (0..3)
        .filter_map(|i| m.get(&format!("ini{i}.drain_latency_count")))
        .sum();
    assert!(drains > 0.0, "TC initiators should record drain latencies");
    let ini_ratio = get("ini1.coalesce_ratio");
    assert!(
        ini_ratio > 16.0,
        "initiator-side coalesce ratio should approach W=32: {ini_ratio:.2}"
    );

    // Snapshot-internal consistency: initiator counters cover the whole
    // run (warmup + measure), so their sum must dominate the cluster's
    // measure-window total, and the target saw the same command count.
    let ini_completed: f64 = (0..3).map(|i| get(&format!("ini{i}.completed"))).sum();
    assert!(
        ini_completed >= r.completed as f64,
        "full-run initiator completions ({ini_completed}) must cover the \
         measure-window total ({})",
        r.completed
    );
    assert!(
        (get("pair0.tgt.completed") - ini_completed).abs() <= 3.0 * 128.0,
        "target completions should match initiator completions within \
         inflight depth"
    );
}
